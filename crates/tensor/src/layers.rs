//! Quantized CNN layers executing on a pluggable [`VdpEngine`].
//!
//! Every layer that multiplies — convolution (with groups/depthwise) and
//! fully-connected — routes its inner products through the engine, so the
//! same network definition runs bit-exactly (ExactEngine) or through the
//! SCONNA stochastic pipeline (engine from `sconna-accel`). Pooling and
//! ReLU act directly on activation codes (ReLU is folded into
//! requantization's clamp at zero).
//!
//! Convolution runs through an **im2col + batched-VDP** hot path: output
//! rows are cut into fixed blocks, each block's patches are gathered into
//! a [`PatchMatrix`](crate::engine::PatchMatrix) once per group
//! (arena-reused scratch on the serving path — [`crate::arena`]), and the
//! whole patch × kernel tile
//! goes to [`VdpEngine::vdp_batch`] in one call. Blocks are independent,
//! so they evaluate in parallel (`sconna_sim::parallel`) and — because
//! every accumulator's noise key is derived from its (layer, group,
//! output position, kernel) coordinates, never from execution order —
//! the result is bit-identical for any worker count. The pre-batching
//! per-pixel path survives as [`QConv2d::forward_reference`], the parity
//! oracle and benchmark baseline.
//!
//! Two weight-stationary extensions ride on the same block machinery:
//!
//! * **Prepared weights** — [`QConv2d::prepare`] / [`QFc::prepare`]
//!   transform each layer's weights into the engine's
//!   [`PreparedWeights`] form once at model load; every forward then
//!   runs [`VdpEngine::vdp_batch_prepared`], so per-call weight
//!   derivation (the exact engine's i16 narrowing, SCONNA's DKV/LUT
//!   stream addressing) never repeats per row block.
//! * **Whole-batch tiles** — the multi-image forwards
//!   ([`QConv2d::forward_batch_keyed`],
//!   [`QFc::forward_logits_batch_keyed`]) stack the im2col patches of
//!   *every image of a serving batch* into one tile per (block, group),
//!   so a layer's weights are fetched once per tile for the whole batch
//!   instead of once per request. Each image keeps its own noise base
//!   key, so the stacked result is bit-identical to running the images
//!   one by one.

use crate::arena::{BatchArena, ConvScratch};
use crate::engine::{combine_keys, mix_key, PreparedWeights, VdpEngine, WeightMatrix};
use crate::quant::Requant;
use crate::tensor::Tensor;
use sconna_sim::parallel::{block_ranges, parallel_map_with};

/// Target patch count per im2col block: large enough that the GEMM tile
/// amortizes gather, dispatch and buffer setup, small enough that
/// row-parallel layers still expose work to every worker. The row count
/// per block derives from this and the output width alone — never from
/// the worker count — so the block decomposition (and with it every
/// noise key) is identical for any parallelism.
const CONV_BLOCK_PATCHES: usize = 128;

/// Re-fits signed weight codes onto the symmetric `bits`-bit grid:
/// the observed |code| maximum maps to the new `qmax`, every code is
/// rounded onto the coarser grid, and the returned `ratio` is the factor
/// the layer's scale (requant multiplier / dequant) must grow by so the
/// represented real weights are preserved to within half a new step.
/// Codes that already fit the target grid are returned unchanged with a
/// ratio of 1 — requantizing to the current precision is the identity.
///
/// # Panics
/// Panics if `bits` is not in `2..=16`.
fn requantize_weight_codes(weights: &Tensor<i32>, bits: u8) -> (Tensor<i32>, f64) {
    assert!(
        (2..=16).contains(&bits),
        "weight precision must be in 2..=16, got {bits}"
    );
    let qmax = (1i32 << (bits - 1)) - 1;
    let max_abs = weights
        .as_slice()
        .iter()
        .map(|w| w.unsigned_abs())
        .max()
        .unwrap_or(0);
    if max_abs <= qmax as u32 {
        return (weights.clone(), 1.0);
    }
    let ratio = max_abs as f64 / qmax as f64;
    let requantized = weights.map(|w| ((w as f64 / ratio).round() as i32).clamp(-qmax, qmax));
    (requantized, ratio)
}

/// FNV-1a hash of a layer name — the stable per-layer component of every
/// accumulator's noise key.
fn name_key(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix_key(h)
}

/// Quantized 2-D convolution.
#[derive(Debug, Clone)]
pub struct QConv2d {
    /// Layer name for reports.
    pub name: String,
    /// Weights `[L, D/groups, K, K]` in signed integer codes.
    pub weights: Tensor<i32>,
    /// Per-kernel bias in integer accumulator units.
    pub bias: Vec<f64>,
    /// Spatial stride ψ.
    pub stride: usize,
    /// Zero padding on each border.
    pub padding: usize,
    /// Channel groups (`groups == in_channels` is depthwise).
    pub groups: usize,
    /// Accumulator→activation requantizer (ReLU folded in).
    pub requant: Requant,
}

impl QConv2d {
    /// Output spatial size for an input of `(h, w)`.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let k = self.weights.dims()[2];
        (
            (h + 2 * self.padding - k) / self.stride + 1,
            (w + 2 * self.padding - k) / self.stride + 1,
        )
    }

    /// Flattened vector length `S = K·K·D/groups` of this layer's VDP
    /// operations.
    pub fn vector_len(&self) -> usize {
        let d = self.weights.dims()[1];
        let k = self.weights.dims()[2];
        d * k * k
    }

    /// Stable per-layer noise-key component (FNV-1a of the layer name).
    pub fn layer_key(&self) -> u64 {
        name_key(&self.name)
    }

    /// Runs the convolution on activation codes (ReLU folded into the
    /// requantizer's clamp at zero).
    ///
    /// # Panics
    /// Panics if the input channel count does not match the weights and
    /// groups, or the kernel does not fit the padded input.
    pub fn forward(&self, input: &Tensor<u32>, engine: &dyn VdpEngine) -> Tensor<u32> {
        self.forward_keyed(input, engine, self.layer_key(), 1)
    }

    /// [`QConv2d::forward`] with an explicit noise base key and worker
    /// count. The base key lets callers decorrelate noise across images
    /// (the network forward mixes an image key in); the block-parallel
    /// result is bit-identical for every `workers` value.
    pub fn forward_keyed(
        &self,
        input: &Tensor<u32>,
        engine: &dyn VdpEngine,
        base_key: u64,
        workers: usize,
    ) -> Tensor<u32> {
        self.forward_blocks(&[input], engine, None, &[base_key], workers, |acc, rq| {
            rq.apply(acc)
        })
        .pop()
        .expect("invariant: forward_blocks yields one output per input")
    }

    /// A lower-weight-precision copy of this layer: weight codes are
    /// re-fit onto the symmetric `bits`-bit grid (the layer's observed
    /// |code| maximum maps to the new `qmax`), and the requantizer and
    /// accumulator-unit bias absorb the scale change, so the represented
    /// real weights move by at most half a new quantization step. The
    /// building block of [`crate::network::QuantizedNetwork::with_weight_bits`],
    /// the cheap fallback model a `Degrade` admission policy serves shed
    /// requests on.
    ///
    /// # Panics
    /// Panics if `bits` is not in `2..=16`.
    pub fn with_weight_bits(&self, bits: u8) -> Self {
        let (weights, ratio) = requantize_weight_codes(&self.weights, bits);
        Self {
            weights,
            bias: self.bias.iter().map(|b| b / ratio).collect(),
            requant: Requant {
                multiplier: (self.requant.multiplier as f64 * ratio) as f32,
                ..self.requant
            },
            ..self.clone()
        }
    }

    /// Transforms this layer's weights into `engine`'s weight-stationary
    /// [`PreparedWeights`] form, one handle per channel group (kernels of
    /// a group are contiguous in the `[L, D/g, K, K]` layout) — computed
    /// once at model load and reused by every forward.
    pub fn prepare(&self, engine: &dyn VdpEngine) -> Vec<PreparedWeights> {
        let patch_len = self.vector_len();
        let kpg = self.weights.dims()[0] / self.groups;
        (0..self.groups)
            .map(|g| {
                let wslice =
                    &self.weights.as_slice()[g * kpg * patch_len..(g + 1) * kpg * patch_len];
                engine.prepare_weights(&WeightMatrix::new(wslice, kpg, patch_len))
            })
            .collect()
    }

    /// [`QConv2d::forward_keyed`] against prepared weight handles from
    /// [`QConv2d::prepare`] — bit-identical results, with the per-call
    /// weight derivation hoisted out of the row-block loop.
    ///
    /// # Panics
    /// Panics if `prepared` does not hold one handle per group with this
    /// layer's geometry.
    pub fn forward_prepared_keyed(
        &self,
        input: &Tensor<u32>,
        engine: &dyn VdpEngine,
        prepared: &[PreparedWeights],
        base_key: u64,
        workers: usize,
    ) -> Tensor<u32> {
        self.forward_blocks(
            &[input],
            engine,
            Some(prepared),
            &[base_key],
            workers,
            |acc, rq| rq.apply(acc),
        )
        .pop()
        .expect("invariant: forward_blocks yields one output per input")
    }

    /// Runs the convolution over a whole serving batch at once: the
    /// im2col patches of **all** images are stacked into one
    /// `vdp_batch` tile per (row block, group), so the weight matrix is
    /// fetched once per tile for the entire batch — the weight-stationary
    /// amortization the hardware mapping assumes. Image `b`'s
    /// accumulators are keyed from `base_keys[b]` exactly as in the
    /// single-image path, so the result is bit-identical to calling
    /// [`QConv2d::forward_keyed`] per image (property-tested). An empty
    /// batch returns an empty vector.
    ///
    /// # Panics
    /// Panics if the images disagree in shape, or `base_keys` is not one
    /// key per image.
    pub fn forward_batch_keyed(
        &self,
        inputs: &[&Tensor<u32>],
        engine: &dyn VdpEngine,
        prepared: Option<&[PreparedWeights]>,
        base_keys: &[u64],
        workers: usize,
    ) -> Vec<Tensor<u32>> {
        self.forward_blocks(inputs, engine, prepared, base_keys, workers, |acc, rq| {
            rq.apply(acc)
        })
    }

    /// [`QConv2d::forward_batch_keyed`] with arena-reused im2col scratch
    /// and output tensors drawn from `arena` — bit-identical (recycled
    /// buffers are re-zeroed and noise keys are pure coordinate
    /// functions), but steady-state allocation-free when the caller
    /// recycles the inputs after the layer.
    pub fn forward_batch_keyed_in(
        &self,
        inputs: &[&Tensor<u32>],
        engine: &dyn VdpEngine,
        prepared: Option<&[PreparedWeights]>,
        base_keys: &[u64],
        workers: usize,
        arena: &BatchArena,
    ) -> Vec<Tensor<u32>> {
        self.forward_blocks_in(
            inputs,
            engine,
            prepared,
            base_keys,
            workers,
            Some(arena),
            |dims| arena.tensor(dims),
            |acc, rq| rq.apply(acc),
        )
    }

    /// Runs the convolution but keeps **signed pre-activation codes**
    /// (same scale as [`QConv2d::forward`], no ReLU clamp) — what a
    /// residual branch produces before the skip addition.
    pub fn forward_preactivation(
        &self,
        input: &Tensor<u32>,
        engine: &dyn VdpEngine,
    ) -> Tensor<i32> {
        self.forward_preactivation_keyed(input, engine, self.layer_key(), 1)
    }

    /// [`QConv2d::forward_preactivation`] with an explicit noise base key
    /// and worker count.
    pub fn forward_preactivation_keyed(
        &self,
        input: &Tensor<u32>,
        engine: &dyn VdpEngine,
        base_key: u64,
        workers: usize,
    ) -> Tensor<i32> {
        self.forward_blocks(&[input], engine, None, &[base_key], workers, |acc, rq| {
            rq.apply_signed(acc)
        })
        .pop()
        .expect("invariant: forward_blocks yields one output per input")
    }

    /// Pre-batching reference path: per-pixel patch gather and one
    /// single-vector engine call per (pixel, kernel), with the **same
    /// noise keys** as the batched path — the parity oracle for the
    /// im2col/`vdp_batch` rebuild and the baseline the inference bench
    /// measures speedup against.
    pub fn forward_reference(&self, input: &Tensor<u32>, engine: &dyn VdpEngine) -> Tensor<u32> {
        let geo = self.validate(input);
        let base_key = self.layer_key();
        let mut out = Tensor::<u32>::zeros(&[geo.l, geo.h_out, geo.w_out]);
        let mut patch: Vec<u32> = vec![0; geo.patch_len];
        for oy in 0..geo.h_out {
            for ox in 0..geo.w_out {
                for g in 0..self.groups {
                    self.gather_patch(input, &geo, g, oy, ox, &mut patch);
                    let pkey =
                        combine_keys(base_key, ((g * geo.h_out + oy) * geo.w_out + ox) as u64);
                    for kg in 0..geo.kernels_per_group {
                        let k = g * geo.kernels_per_group + kg;
                        let wrow =
                            &self.weights.as_slice()[k * geo.patch_len..(k + 1) * geo.patch_len];
                        let acc = engine.vdp_keyed(&patch, wrow, combine_keys(pkey, kg as u64))
                            + self.bias[k];
                        out.set3(k, oy, ox, self.requant.apply(acc));
                    }
                }
            }
        }
        out
    }

    /// Validates shapes and returns the derived geometry.
    fn validate(&self, input: &Tensor<u32>) -> ConvGeometry {
        let [l, d_g, kh, kw] = *self.weights.dims() else {
            panic!("conv weights must be rank 4, got {:?}", self.weights.dims());
        };
        assert_eq!(kh, kw, "only square kernels are used by the evaluated CNNs");
        let [d_in, h, w] = *input.dims() else {
            panic!("conv input must be rank 3, got {:?}", input.dims());
        };
        assert_eq!(
            d_in,
            d_g * self.groups,
            "{}: input channels {d_in} != {d_g} x {} groups",
            self.name,
            self.groups
        );
        assert_eq!(
            l % self.groups,
            0,
            "{}: kernels not divisible by groups",
            self.name
        );
        assert_eq!(self.bias.len(), l, "{}: bias length mismatch", self.name);
        assert!(
            h + 2 * self.padding >= kh && w + 2 * self.padding >= kw,
            "{}: kernel {kh} does not fit input {h}x{w} with padding {}",
            self.name,
            self.padding
        );
        let (h_out, w_out) = self.output_hw(h, w);
        ConvGeometry {
            l,
            d_g,
            k: kh,
            h,
            w,
            h_out,
            w_out,
            patch_len: self.vector_len(),
            kernels_per_group: l / self.groups,
        }
    }

    /// Gathers the (c, y, x)-ordered patch of group `g` at output
    /// position `(oy, ox)` — the DIV of Section II-B.
    #[inline]
    fn gather_patch(
        &self,
        input: &Tensor<u32>,
        geo: &ConvGeometry,
        g: usize,
        oy: usize,
        ox: usize,
        patch: &mut [u32],
    ) {
        let mut idx = 0;
        for c in 0..geo.d_g {
            let ic = g * geo.d_g + c;
            for ky in 0..geo.k {
                let iy = oy * self.stride + ky;
                for kx in 0..geo.k {
                    let ix = ox * self.stride + kx;
                    patch[idx] = in_bounds(iy, ix, self.padding, geo.h, geo.w)
                        .map_or(0, |(y, x)| input.at3(ic, y, x));
                    idx += 1;
                }
            }
        }
    }

    /// [`QConv2d::gather_patch`] without per-tap indexing: each kernel
    /// row of the patch is one bulk copy of the contiguous input span
    /// (`kx` consecutive ⇒ source x consecutive, any stride), with
    /// padding pre-zeroed. Produces exactly the same patch — the parity
    /// proptests run the per-tap reference against this path.
    #[inline]
    fn gather_patch_fast(
        &self,
        x: &[u32],
        geo: &ConvGeometry,
        g: usize,
        oy: usize,
        ox: usize,
        patch: &mut [u32],
    ) {
        let ix0 = ox * self.stride;
        let pad = self.padding;
        let mut idx = 0;
        for c in 0..geo.d_g {
            let base_c = (g * geo.d_g + c) * geo.h * geo.w;
            for ky in 0..geo.k {
                let row = &mut patch[idx..idx + geo.k];
                idx += geo.k;
                let iy = oy * self.stride + ky;
                let y = match iy.checked_sub(pad) {
                    Some(y) if y < geo.h => y,
                    _ => {
                        row.fill(0);
                        continue;
                    }
                };
                // kx consecutive ⇒ source x consecutive: one branchy
                // pass over the row (interior rows predict perfectly;
                // a memcpy call would cost more than these few taps).
                let src = &x[base_c + y * geo.w..base_c + (y + 1) * geo.w];
                for (kx, slot) in row.iter_mut().enumerate() {
                    let ix = ix0 + kx;
                    *slot = if ix >= pad && ix - pad < geo.w {
                        src[ix - pad]
                    } else {
                        0
                    };
                }
            }
        }
    }

    /// The batched hot path: row blocks → im2col gather (all images of
    /// the batch stacked) → one `vdp_batch`/`vdp_batch_prepared` tile per
    /// group → requantize, blocks evaluated in parallel.
    fn forward_blocks<T>(
        &self,
        inputs: &[&Tensor<u32>],
        engine: &dyn VdpEngine,
        prepared: Option<&[PreparedWeights]>,
        base_keys: &[u64],
        workers: usize,
        convert: impl Fn(f64, &Requant) -> T + Sync,
    ) -> Vec<Tensor<T>>
    where
        T: Copy + Default + Send,
    {
        self.forward_blocks_in(
            inputs,
            engine,
            prepared,
            base_keys,
            workers,
            None,
            Tensor::<T>::zeros,
            convert,
        )
    }

    /// [`QConv2d::forward_blocks`] with optional arena reuse: im2col
    /// scratch is checked out of `arena` per row block and output tensors
    /// come from `alloc` (fresh zeros, or recycled arena storage). `None`
    /// allocates fresh scratch — observationally identical either way.
    #[allow(clippy::too_many_arguments)]
    fn forward_blocks_in<T>(
        &self,
        inputs: &[&Tensor<u32>],
        engine: &dyn VdpEngine,
        prepared: Option<&[PreparedWeights]>,
        base_keys: &[u64],
        workers: usize,
        arena: Option<&BatchArena>,
        alloc: impl Fn(&[usize]) -> Tensor<T>,
        convert: impl Fn(f64, &Requant) -> T + Sync,
    ) -> Vec<Tensor<T>>
    where
        T: Copy + Default + Send,
    {
        assert_eq!(base_keys.len(), inputs.len(), "one base key per image");
        let Some(first) = inputs.first() else {
            // Empty batch: nothing to compute (mirrors the FC batch API).
            return Vec::new();
        };
        let geo = self.validate(first);
        for input in &inputs[1..] {
            assert_eq!(
                input.dims(),
                first.dims(),
                "{}: batched images must agree in shape",
                self.name
            );
        }
        if let Some(ps) = prepared {
            assert_eq!(
                ps.len(),
                self.groups,
                "{}: one prepared handle per group",
                self.name
            );
            for p in ps {
                assert_eq!(
                    (p.rows(), p.cols()),
                    (geo.kernels_per_group, geo.patch_len),
                    "{}: prepared handle geometry mismatch",
                    self.name
                );
            }
        }
        let rows_per_block = (CONV_BLOCK_PATCHES / geo.w_out.max(1)).clamp(1, 16);
        let blocks = block_ranges(geo.h_out, rows_per_block);
        let slabs: Vec<Vec<T>> = parallel_map_with(blocks.clone(), workers, |rows| {
            self.eval_rows(
                inputs, engine, prepared, &geo, base_keys, rows, arena, &convert,
            )
        });

        // Assemble the row slabs (laid out [image][k][block row][x]) into
        // one output tensor per image.
        let mut outs: Vec<Tensor<T>> = inputs
            .iter()
            .map(|_| alloc(&[geo.l, geo.h_out, geo.w_out]))
            .collect();
        for (rows, slab) in blocks.into_iter().zip(slabs) {
            let bh = rows.len();
            let n_local = bh * geo.w_out;
            for (b, out) in outs.iter_mut().enumerate() {
                let od = out.as_mut_slice();
                for k in 0..geo.l {
                    for (by, oy) in rows.clone().enumerate() {
                        let src = (b * geo.l + k) * n_local + by * geo.w_out;
                        let dst = (k * geo.h_out + oy) * geo.w_out;
                        od[dst..dst + geo.w_out].copy_from_slice(&slab[src..src + geo.w_out]);
                    }
                }
            }
        }
        outs
    }

    /// Evaluates output rows `rows` of every kernel for every image of
    /// the batch: one im2col gather + one batched-VDP tile per group,
    /// patches of all images stacked image-major.
    #[allow(clippy::too_many_arguments)]
    fn eval_rows<T>(
        &self,
        inputs: &[&Tensor<u32>],
        engine: &dyn VdpEngine,
        prepared: Option<&[PreparedWeights]>,
        geo: &ConvGeometry,
        base_keys: &[u64],
        rows: std::ops::Range<usize>,
        arena: Option<&BatchArena>,
        convert: &(impl Fn(f64, &Requant) -> T + Sync),
    ) -> Vec<T>
    where
        T: Copy + Default,
    {
        let bh = rows.len();
        let n_local = bh * geo.w_out;
        let n_patches = inputs.len() * n_local;
        let mut slab = vec![T::default(); inputs.len() * geo.l * n_local];
        // The im2col gather buffers come from the arena when one is
        // threaded through — checked out per row block, returned after
        // the tile, zeroed either way.
        let mut scratch = arena.map_or_else(ConvScratch::default, BatchArena::scratch);
        scratch.prepare(n_patches, geo.patch_len);
        let ConvScratch { patches, keys } = &mut scratch;
        let kpg = geo.kernels_per_group;

        for g in 0..self.groups {
            for (b, input) in inputs.iter().enumerate() {
                for (by, oy) in rows.clone().enumerate() {
                    for ox in 0..geo.w_out {
                        let pi = b * n_local + by * geo.w_out + ox;
                        self.gather_patch_fast(
                            input.as_slice(),
                            geo,
                            g,
                            oy,
                            ox,
                            patches.row_mut(pi),
                        );
                        // Key layout mirrors forward_reference exactly:
                        // the key of an accumulator depends only on its
                        // (image, layer, group, output position)
                        // coordinates — never on the block decomposition
                        // or on which other images share the tile.
                        keys[pi] = combine_keys(
                            base_keys[b],
                            ((g * geo.h_out + oy) * geo.w_out + ox) as u64,
                        );
                    }
                }
            }
            let accs = match prepared {
                Some(ps) => engine.vdp_batch_prepared(patches, &ps[g], keys),
                None => {
                    let wslice = &self.weights.as_slice()
                        [g * kpg * geo.patch_len..(g + 1) * kpg * geo.patch_len];
                    engine.vdp_batch(
                        patches,
                        &WeightMatrix::new(wslice, kpg, geo.patch_len),
                        keys,
                    )
                }
            };
            for b in 0..inputs.len() {
                for li in 0..n_local {
                    let pi = b * n_local + li;
                    for kg in 0..kpg {
                        let k = g * kpg + kg;
                        let acc = accs[pi * kpg + kg] + self.bias[k];
                        slab[(b * geo.l + k) * n_local + li] = convert(acc, &self.requant);
                    }
                }
            }
        }
        if let Some(arena) = arena {
            arena.release_scratch(scratch);
        }
        slab
    }
}

/// Shape data derived once per conv forward.
struct ConvGeometry {
    l: usize,
    d_g: usize,
    k: usize,
    h: usize,
    w: usize,
    h_out: usize,
    w_out: usize,
    patch_len: usize,
    kernels_per_group: usize,
}

/// Residual merge on codes: signed pre-activation branch + unsigned skip
/// at the **same scale**, ReLU'd and saturated back into activation
/// codes. (The standard int8 residual-add discipline: the branch's
/// requantizer targets the skip's scale.)
///
/// # Panics
/// Panics on shape mismatch.
pub fn residual_relu_add(branch: &Tensor<i32>, skip: &Tensor<u32>, qmax: u32) -> Tensor<u32> {
    assert_eq!(branch.dims(), skip.dims(), "residual shape mismatch");
    Tensor::from_fn(branch.dims(), |i| {
        let v = branch.as_slice()[i] as i64 + skip.as_slice()[i] as i64;
        v.clamp(0, qmax as i64) as u32
    })
}

#[inline]
fn in_bounds(iy: usize, ix: usize, pad: usize, h: usize, w: usize) -> Option<(usize, usize)> {
    let y = iy.checked_sub(pad)?;
    let x = ix.checked_sub(pad)?;
    (y < h && x < w).then_some((y, x))
}

/// Max pooling on activation codes (quantization is monotone, so pooling
/// codes equals pooling real values).
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    /// Window size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
}

impl MaxPool2d {
    /// Runs the pooling.
    pub fn forward(&self, input: &Tensor<u32>) -> Tensor<u32> {
        let [d, h, w] = *input.dims() else {
            panic!("pool input must be rank 3, got {:?}", input.dims());
        };
        let h_out = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let w_out = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        let mut out = Tensor::<u32>::zeros(&[d, h_out, w_out]);
        for c in 0..d {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut best = 0u32; // padding contributes code 0
                    for ky in 0..self.kernel {
                        for kx in 0..self.kernel {
                            if let Some((y, x)) = in_bounds(
                                oy * self.stride + ky,
                                ox * self.stride + kx,
                                self.padding,
                                h,
                                w,
                            ) {
                                best = best.max(input.at3(c, y, x));
                            }
                        }
                    }
                    out.set3(c, oy, ox, best);
                }
            }
        }
        out
    }
}

/// Global average pooling: collapses each channel to one code
/// (round-to-nearest).
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalAvgPool;

impl GlobalAvgPool {
    /// Runs the pooling, producing a rank-1 tensor of `D` codes.
    pub fn forward(&self, input: &Tensor<u32>) -> Tensor<u32> {
        let [d, h, w] = *input.dims() else {
            panic!("pool input must be rank 3, got {:?}", input.dims());
        };
        let area = (h * w) as u64;
        let mut out = Tensor::<u32>::zeros(&[d]);
        for c in 0..d {
            let mut sum = 0u64;
            for y in 0..h {
                for x in 0..w {
                    sum += input.at3(c, y, x) as u64;
                }
            }
            out.as_mut_slice()[c] = ((sum + area / 2) / area) as u32;
        }
        out
    }
}

/// Quantized fully-connected classifier head. Unlike conv layers its
/// output is signed logits, so no requantization/ReLU is applied — the
/// accumulator is dequantized directly.
#[derive(Debug, Clone)]
pub struct QFc {
    /// Layer name.
    pub name: String,
    /// Weights `[out_features, in_features]` in signed codes.
    pub weights: Tensor<i32>,
    /// Real-valued bias per output.
    pub bias: Vec<f32>,
    /// Dequantization multiplier `in_scale · w_scale`.
    pub dequant: f32,
}

impl QFc {
    /// Stable per-layer noise-key component (FNV-1a of the layer name).
    pub fn layer_key(&self) -> u64 {
        name_key(&self.name)
    }

    /// Computes real-valued logits.
    ///
    /// # Panics
    /// Panics if the input length does not match the weight matrix.
    pub fn forward_logits(&self, input: &Tensor<u32>, engine: &dyn VdpEngine) -> Vec<f32> {
        self.forward_logits_keyed(input, engine, self.layer_key())
    }

    /// [`QFc::forward_logits`] with an explicit noise base key: the whole
    /// classifier is one 1 × `out_features` `vdp_batch` tile.
    pub fn forward_logits_keyed(
        &self,
        input: &Tensor<u32>,
        engine: &dyn VdpEngine,
        base_key: u64,
    ) -> Vec<f32> {
        self.forward_logits_batch_keyed(&[input], engine, None, &[base_key])
            .pop()
            .expect("invariant: forward_logits_batch_keyed yields one row per input")
    }

    /// A lower-weight-precision copy of the classifier: weight codes are
    /// re-fit onto the symmetric `bits`-bit grid and the dequantization
    /// multiplier absorbs the scale change (the real-valued bias is
    /// unaffected). See [`QConv2d::with_weight_bits`].
    ///
    /// # Panics
    /// Panics if `bits` is not in `2..=16`.
    pub fn with_weight_bits(&self, bits: u8) -> Self {
        let (weights, ratio) = requantize_weight_codes(&self.weights, bits);
        Self {
            weights,
            dequant: (self.dequant as f64 * ratio) as f32,
            ..self.clone()
        }
    }

    /// Transforms the classifier weights into `engine`'s
    /// weight-stationary [`PreparedWeights`] form, once at model load.
    pub fn prepare(&self, engine: &dyn VdpEngine) -> PreparedWeights {
        let [out_f, in_f] = *self.weights.dims() else {
            panic!("fc weights must be rank 2, got {:?}", self.weights.dims());
        };
        engine.prepare_weights(&WeightMatrix::new(self.weights.as_slice(), out_f, in_f))
    }

    /// Computes logits for a whole serving batch in one
    /// `feature × class` tile: image `b`'s accumulators are keyed from
    /// `base_keys[b]`, so the stacked result is bit-identical to calling
    /// [`QFc::forward_logits_keyed`] per image. Passing a handle from
    /// [`QFc::prepare`] additionally makes the tile weight-stationary.
    ///
    /// # Panics
    /// Panics on input-length or key-count mismatch.
    pub fn forward_logits_batch_keyed(
        &self,
        inputs: &[&Tensor<u32>],
        engine: &dyn VdpEngine,
        prepared: Option<&PreparedWeights>,
        base_keys: &[u64],
    ) -> Vec<Vec<f32>> {
        self.forward_logits_batch_core(inputs, engine, prepared, base_keys, None)
    }

    /// [`QFc::forward_logits_batch_keyed`] with the feature tile built in
    /// arena-reused scratch — bit-identical, allocation-free in steady
    /// state.
    pub fn forward_logits_batch_keyed_in(
        &self,
        inputs: &[&Tensor<u32>],
        engine: &dyn VdpEngine,
        prepared: Option<&PreparedWeights>,
        base_keys: &[u64],
        arena: &BatchArena,
    ) -> Vec<Vec<f32>> {
        self.forward_logits_batch_core(inputs, engine, prepared, base_keys, Some(arena))
    }

    fn forward_logits_batch_core(
        &self,
        inputs: &[&Tensor<u32>],
        engine: &dyn VdpEngine,
        prepared: Option<&PreparedWeights>,
        base_keys: &[u64],
        arena: Option<&BatchArena>,
    ) -> Vec<Vec<f32>> {
        let [out_f, in_f] = *self.weights.dims() else {
            panic!("fc weights must be rank 2, got {:?}", self.weights.dims());
        };
        assert_eq!(
            self.bias.len(),
            out_f,
            "{}: bias length mismatch",
            self.name
        );
        assert_eq!(base_keys.len(), inputs.len(), "one base key per image");
        let mut scratch = arena.map_or_else(ConvScratch::default, BatchArena::scratch);
        scratch.prepare(inputs.len(), in_f);
        for (b, input) in inputs.iter().enumerate() {
            assert_eq!(input.len(), in_f, "{}: input length mismatch", self.name);
            scratch.patches.row_mut(b).copy_from_slice(input.as_slice());
        }
        let accs = match prepared {
            Some(p) => engine.vdp_batch_prepared(&scratch.patches, p, base_keys),
            None => {
                let wm = WeightMatrix::new(self.weights.as_slice(), out_f, in_f);
                engine.vdp_batch(&scratch.patches, &wm, base_keys)
            }
        };
        if let Some(arena) = arena {
            arena.release_scratch(scratch);
        }
        accs.chunks(out_f)
            .map(|row| {
                row.iter()
                    .zip(&self.bias)
                    .map(|(&acc, &b)| acc as f32 * self.dequant + b)
                    .collect()
            })
            .collect()
    }
}

/// Index of the largest logit.
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(logits: &[f32]) -> usize {
    assert!(!logits.is_empty(), "argmax of empty logits");
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("invariant: networks classify into at least one class")
}

/// Indices of the top-k logits in descending order.
pub fn top_k(logits: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    idx.sort_by(|&a, &b| logits[b].total_cmp(&logits[a]));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::quant::{ActivationQuant, Requant, WeightQuant};

    fn unit_requant() -> Requant {
        Requant::new(
            ActivationQuant {
                scale: 1.0,
                bits: 8,
            },
            WeightQuant {
                scale: 1.0,
                bits: 8,
            },
            ActivationQuant {
                scale: 1.0,
                bits: 8,
            },
        )
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 kernel with weight 1 passes the input through.
        let conv = QConv2d {
            name: "id".into(),
            weights: Tensor::from_vec(&[1, 1, 1, 1], vec![1]),
            bias: vec![0.0],
            stride: 1,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[1, 2, 2], vec![1, 2, 3, 4]);
        let out = conv.forward(&input, &ExactEngine);
        assert_eq!(out.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn conv_hand_computed_3x3() {
        // 3x3 all-ones kernel over a 3x3 all-ones input, no padding:
        // single output = 9.
        let conv = QConv2d {
            name: "sum".into(),
            weights: Tensor::from_vec(&[1, 1, 3, 3], vec![1; 9]),
            bias: vec![0.0],
            stride: 1,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[1, 3, 3], vec![1; 9]);
        let out = conv.forward(&input, &ExactEngine);
        assert_eq!(out.dims(), &[1, 1, 1]);
        assert_eq!(out.as_slice(), &[9]);
    }

    #[test]
    fn conv_padding_zeros_border() {
        // Same kernel with padding 1: corners see only 4 live taps.
        let conv = QConv2d {
            name: "pad".into(),
            weights: Tensor::from_vec(&[1, 1, 3, 3], vec![1; 9]),
            bias: vec![0.0],
            stride: 1,
            padding: 1,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[1, 3, 3], vec![1; 9]);
        let out = conv.forward(&input, &ExactEngine);
        assert_eq!(out.dims(), &[1, 3, 3]);
        assert_eq!(out.at3(0, 0, 0), 4);
        assert_eq!(out.at3(0, 1, 1), 9);
        assert_eq!(out.at3(0, 0, 1), 6);
    }

    #[test]
    fn conv_stride_subsamples() {
        let conv = QConv2d {
            name: "s2".into(),
            weights: Tensor::from_vec(&[1, 1, 1, 1], vec![1]),
            bias: vec![0.0],
            stride: 2,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_fn(&[1, 4, 4], |i| i as u32);
        let out = conv.forward(&input, &ExactEngine);
        assert_eq!(out.dims(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[0, 2, 8, 10]);
    }

    #[test]
    fn conv_relu_clamps_negative_accumulators() {
        let conv = QConv2d {
            name: "neg".into(),
            weights: Tensor::from_vec(&[1, 1, 1, 1], vec![-1]),
            bias: vec![0.0],
            stride: 1,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[1, 1, 1], vec![5]);
        let out = conv.forward(&input, &ExactEngine);
        assert_eq!(out.as_slice(), &[0]);
    }

    #[test]
    fn depthwise_conv_keeps_channels_separate() {
        // 2 channels, depthwise 1x1 with weights [2, 3]: each channel
        // scales independently.
        let conv = QConv2d {
            name: "dw".into(),
            weights: Tensor::from_vec(&[2, 1, 1, 1], vec![2, 3]),
            bias: vec![0.0, 0.0],
            stride: 1,
            padding: 0,
            groups: 2,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[2, 1, 2], vec![1, 2, 10, 20]);
        let out = conv.forward(&input, &ExactEngine);
        assert_eq!(out.as_slice(), &[2, 4, 30, 60]);
    }

    #[test]
    fn conv_bias_applies_before_requant() {
        let conv = QConv2d {
            name: "bias".into(),
            weights: Tensor::from_vec(&[1, 1, 1, 1], vec![1]),
            bias: vec![10.0],
            stride: 1,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[1, 1, 1], vec![5]);
        assert_eq!(conv.forward(&input, &ExactEngine).as_slice(), &[15]);
    }

    #[test]
    fn maxpool_basic() {
        let pool = MaxPool2d {
            kernel: 2,
            stride: 2,
            padding: 0,
        };
        let input = Tensor::<u32>::from_vec(&[1, 4, 4], (0..16).collect());
        let out = pool.forward(&input);
        assert_eq!(out.dims(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_overlapping_window() {
        // 3x3 window, stride 2, padding 1 — GoogleNet/ResNet style.
        let pool = MaxPool2d {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let input = Tensor::<u32>::from_fn(&[1, 4, 4], |i| i as u32);
        let out = pool.forward(&input);
        assert_eq!(out.dims(), &[1, 2, 2]);
        assert_eq!(out.at3(0, 1, 1), 15);
    }

    #[test]
    fn global_avg_pool_rounds() {
        let input = Tensor::<u32>::from_vec(&[2, 1, 2], vec![1, 2, 10, 20]);
        let out = GlobalAvgPool.forward(&input);
        assert_eq!(out.dims(), &[2]);
        assert_eq!(out.as_slice(), &[2, 15]); // (1+2)/2 rounds to 2
    }

    #[test]
    fn fc_logits_with_bias() {
        let fc = QFc {
            name: "head".into(),
            weights: Tensor::from_vec(&[2, 3], vec![1, 0, -1, 2, 2, 2]),
            bias: vec![0.5, -1.0],
            dequant: 0.1,
        };
        let input = Tensor::<u32>::from_vec(&[3], vec![10, 20, 30]);
        let logits = fc.forward_logits(&input, &ExactEngine);
        // row0: 10 - 30 = -20 → -2.0 + 0.5 = -1.5
        // row1: 2*(60) = 120 → 12.0 - 1.0 = 11.0
        assert!((logits[0] + 1.5).abs() < 1e-6);
        assert!((logits[1] - 11.0).abs() < 1e-6);
        assert_eq!(argmax(&logits), 1);
    }

    #[test]
    fn top_k_ordering() {
        let logits = [0.1f32, 5.0, -2.0, 3.0];
        assert_eq!(top_k(&logits, 3), vec![1, 3, 0]);
    }

    #[test]
    fn empty_batch_forward_returns_empty() {
        // Mirrors the FC batch API: a zero-request flush must not panic.
        let conv = QConv2d {
            name: "empty".into(),
            weights: Tensor::from_vec(&[1, 1, 1, 1], vec![1]),
            bias: vec![0.0],
            stride: 1,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let prepared = conv.prepare(&ExactEngine);
        let out = conv.forward_batch_keyed(&[], &ExactEngine, Some(&prepared), &[], 4);
        assert!(out.is_empty());
    }

    #[test]
    fn batched_forward_matches_reference_path() {
        // Strided, padded, grouped: the im2col path must agree with the
        // per-pixel reference everywhere.
        let conv = QConv2d {
            name: "parity".into(),
            weights: Tensor::from_fn(&[4, 2, 3, 3], |i| (i % 17) as i32 - 8),
            bias: vec![1.0, -2.0, 0.5, 3.0],
            stride: 2,
            padding: 1,
            groups: 2,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_fn(&[4, 7, 7], |i| (i % 256) as u32);
        let batched = conv.forward(&input, &ExactEngine);
        let reference = conv.forward_reference(&input, &ExactEngine);
        assert_eq!(batched.as_slice(), reference.as_slice());
    }

    #[test]
    fn forward_is_worker_count_invariant() {
        let conv = QConv2d {
            name: "workers".into(),
            weights: Tensor::from_fn(&[3, 2, 3, 3], |i| (i % 13) as i32 - 6),
            bias: vec![0.0; 3],
            stride: 1,
            padding: 1,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_fn(&[2, 11, 9], |i| (i % 200) as u32);
        let key = conv.layer_key();
        let baseline = conv.forward_keyed(&input, &ExactEngine, key, 1);
        for workers in [2usize, 3, 8] {
            let run = conv.forward_keyed(&input, &ExactEngine, key, workers);
            assert_eq!(baseline.as_slice(), run.as_slice(), "{workers} workers");
        }
    }

    #[test]
    fn preactivation_matches_relu_free_requant() {
        let conv = QConv2d {
            name: "pre".into(),
            weights: Tensor::from_vec(&[1, 1, 1, 1], vec![-1]),
            bias: vec![0.0],
            stride: 1,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[1, 1, 2], vec![5, 3]);
        let pre = conv.forward_preactivation(&input, &ExactEngine);
        assert_eq!(pre.as_slice(), &[-5, -3]);
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn conv_channel_mismatch_panics() {
        let conv = QConv2d {
            name: "bad".into(),
            weights: Tensor::from_vec(&[1, 2, 1, 1], vec![1, 1]),
            bias: vec![0.0],
            stride: 1,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::zeros(&[3, 2, 2]);
        let _ = conv.forward(&input, &ExactEngine);
    }
}
