//! Quantized CNN layers executing on a pluggable [`VdpEngine`].
//!
//! Every layer that multiplies — convolution (with groups/depthwise) and
//! fully-connected — routes its inner products through the engine, so the
//! same network definition runs bit-exactly (ExactEngine) or through the
//! SCONNA stochastic pipeline (engine from `sconna-accel`). Pooling and
//! ReLU act directly on activation codes (ReLU is folded into
//! requantization's clamp at zero).

use crate::engine::VdpEngine;
use crate::quant::Requant;
use crate::tensor::Tensor;

/// Quantized 2-D convolution.
#[derive(Debug, Clone)]
pub struct QConv2d {
    /// Layer name for reports.
    pub name: String,
    /// Weights `[L, D/groups, K, K]` in signed integer codes.
    pub weights: Tensor<i32>,
    /// Per-kernel bias in integer accumulator units.
    pub bias: Vec<f64>,
    /// Spatial stride ψ.
    pub stride: usize,
    /// Zero padding on each border.
    pub padding: usize,
    /// Channel groups (`groups == in_channels` is depthwise).
    pub groups: usize,
    /// Accumulator→activation requantizer (ReLU folded in).
    pub requant: Requant,
}

impl QConv2d {
    /// Output spatial size for an input of `(h, w)`.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let k = self.weights.dims()[2];
        (
            (h + 2 * self.padding - k) / self.stride + 1,
            (w + 2 * self.padding - k) / self.stride + 1,
        )
    }

    /// Flattened vector length `S = K·K·D/groups` of this layer's VDP
    /// operations.
    pub fn vector_len(&self) -> usize {
        let d = self.weights.dims()[1];
        let k = self.weights.dims()[2];
        d * k * k
    }

    /// Runs the convolution on activation codes (ReLU folded into the
    /// requantizer's clamp at zero).
    ///
    /// # Panics
    /// Panics if the input channel count does not match the weights and
    /// groups, or the kernel does not fit the padded input.
    pub fn forward(&self, input: &Tensor<u32>, engine: &dyn VdpEngine) -> Tensor<u32> {
        let mut out = Tensor::<u32>::zeros(&self.out_dims(input));
        self.for_each_accumulator(input, engine, |k, oy, ox, acc, requant| {
            out.set3(k, oy, ox, requant.apply(acc));
        });
        out
    }

    /// Runs the convolution but keeps **signed pre-activation codes**
    /// (same scale as [`QConv2d::forward`], no ReLU clamp) — what a
    /// residual branch produces before the skip addition.
    pub fn forward_preactivation(&self, input: &Tensor<u32>, engine: &dyn VdpEngine) -> Tensor<i32> {
        let mut out = Tensor::<i32>::zeros(&self.out_dims(input));
        self.for_each_accumulator(input, engine, |k, oy, ox, acc, requant| {
            out.set3(k, oy, ox, requant.apply_signed(acc));
        });
        out
    }

    fn out_dims(&self, input: &Tensor<u32>) -> [usize; 3] {
        let [_, h, w] = *input.dims() else {
            panic!("conv input must be rank 3, got {:?}", input.dims());
        };
        let (h_out, w_out) = self.output_hw(h, w);
        [self.weights.dims()[0], h_out, w_out]
    }

    fn for_each_accumulator(
        &self,
        input: &Tensor<u32>,
        engine: &dyn VdpEngine,
        mut emit: impl FnMut(usize, usize, usize, f64, &Requant),
    ) {
        let [l, d_g, kh, kw] = *self.weights.dims() else {
            panic!("conv weights must be rank 4, got {:?}", self.weights.dims());
        };
        assert_eq!(kh, kw, "only square kernels are used by the evaluated CNNs");
        let [d_in, h, w] = *input.dims() else {
            panic!("conv input must be rank 3, got {:?}", input.dims());
        };
        assert_eq!(
            d_in,
            d_g * self.groups,
            "{}: input channels {d_in} != {d_g} x {} groups",
            self.name,
            self.groups
        );
        assert_eq!(l % self.groups, 0, "{}: kernels not divisible by groups", self.name);
        assert_eq!(self.bias.len(), l, "{}: bias length mismatch", self.name);
        assert!(
            h + 2 * self.padding >= kh && w + 2 * self.padding >= kw,
            "{}: kernel {kh} does not fit input {h}x{w} with padding {}",
            self.name,
            self.padding
        );

        let (h_out, w_out) = self.output_hw(h, w);
        let patch_len = self.vector_len();
        let kernels_per_group = l / self.groups;
        let mut patch: Vec<u32> = vec![0; patch_len];

        for oy in 0..h_out {
            for ox in 0..w_out {
                for g in 0..self.groups {
                    // Gather the (c, y, x)-ordered patch for this group —
                    // the DIV of Section II-B.
                    let mut idx = 0;
                    for c in 0..d_g {
                        let ic = g * d_g + c;
                        for ky in 0..kh {
                            let iy = oy * self.stride + ky;
                            for kx in 0..kw {
                                let ix = ox * self.stride + kx;
                                patch[idx] = in_bounds(iy, ix, self.padding, h, w)
                                    .map(|(y, x)| input.at3(ic, y, x))
                                    .unwrap_or(0);
                                idx += 1;
                            }
                        }
                    }
                    for kg in 0..kernels_per_group {
                        let k = g * kernels_per_group + kg;
                        let wrow = &self.weights.as_slice()[k * patch_len..(k + 1) * patch_len];
                        let acc = engine.vdp(&patch, wrow) + self.bias[k];
                        emit(k, oy, ox, acc, &self.requant);
                    }
                }
            }
        }
    }
}

/// Residual merge on codes: signed pre-activation branch + unsigned skip
/// at the **same scale**, ReLU'd and saturated back into activation
/// codes. (The standard int8 residual-add discipline: the branch's
/// requantizer targets the skip's scale.)
///
/// # Panics
/// Panics on shape mismatch.
pub fn residual_relu_add(branch: &Tensor<i32>, skip: &Tensor<u32>, qmax: u32) -> Tensor<u32> {
    assert_eq!(branch.dims(), skip.dims(), "residual shape mismatch");
    Tensor::from_fn(branch.dims(), |i| {
        let v = branch.as_slice()[i] as i64 + skip.as_slice()[i] as i64;
        v.clamp(0, qmax as i64) as u32
    })
}

#[inline]
fn in_bounds(iy: usize, ix: usize, pad: usize, h: usize, w: usize) -> Option<(usize, usize)> {
    let y = iy.checked_sub(pad)?;
    let x = ix.checked_sub(pad)?;
    (y < h && x < w).then_some((y, x))
}

/// Max pooling on activation codes (quantization is monotone, so pooling
/// codes equals pooling real values).
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    /// Window size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
}

impl MaxPool2d {
    /// Runs the pooling.
    pub fn forward(&self, input: &Tensor<u32>) -> Tensor<u32> {
        let [d, h, w] = *input.dims() else {
            panic!("pool input must be rank 3, got {:?}", input.dims());
        };
        let h_out = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let w_out = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        let mut out = Tensor::<u32>::zeros(&[d, h_out, w_out]);
        for c in 0..d {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut best = 0u32; // padding contributes code 0
                    for ky in 0..self.kernel {
                        for kx in 0..self.kernel {
                            if let Some((y, x)) = in_bounds(
                                oy * self.stride + ky,
                                ox * self.stride + kx,
                                self.padding,
                                h,
                                w,
                            ) {
                                best = best.max(input.at3(c, y, x));
                            }
                        }
                    }
                    out.set3(c, oy, ox, best);
                }
            }
        }
        out
    }
}

/// Global average pooling: collapses each channel to one code
/// (round-to-nearest).
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalAvgPool;

impl GlobalAvgPool {
    /// Runs the pooling, producing a rank-1 tensor of `D` codes.
    pub fn forward(&self, input: &Tensor<u32>) -> Tensor<u32> {
        let [d, h, w] = *input.dims() else {
            panic!("pool input must be rank 3, got {:?}", input.dims());
        };
        let area = (h * w) as u64;
        let mut out = Tensor::<u32>::zeros(&[d]);
        for c in 0..d {
            let mut sum = 0u64;
            for y in 0..h {
                for x in 0..w {
                    sum += input.at3(c, y, x) as u64;
                }
            }
            out.as_mut_slice()[c] = ((sum + area / 2) / area) as u32;
        }
        out
    }
}

/// Quantized fully-connected classifier head. Unlike conv layers its
/// output is signed logits, so no requantization/ReLU is applied — the
/// accumulator is dequantized directly.
#[derive(Debug, Clone)]
pub struct QFc {
    /// Layer name.
    pub name: String,
    /// Weights `[out_features, in_features]` in signed codes.
    pub weights: Tensor<i32>,
    /// Real-valued bias per output.
    pub bias: Vec<f32>,
    /// Dequantization multiplier `in_scale · w_scale`.
    pub dequant: f32,
}

impl QFc {
    /// Computes real-valued logits.
    ///
    /// # Panics
    /// Panics if the input length does not match the weight matrix.
    pub fn forward_logits(&self, input: &Tensor<u32>, engine: &dyn VdpEngine) -> Vec<f32> {
        let [out_f, in_f] = *self.weights.dims() else {
            panic!("fc weights must be rank 2, got {:?}", self.weights.dims());
        };
        assert_eq!(input.len(), in_f, "{}: input length mismatch", self.name);
        assert_eq!(self.bias.len(), out_f, "{}: bias length mismatch", self.name);
        (0..out_f)
            .map(|o| {
                let wrow = &self.weights.as_slice()[o * in_f..(o + 1) * in_f];
                let acc = engine.vdp(input.as_slice(), wrow);
                acc as f32 * self.dequant + self.bias[o]
            })
            .collect()
    }
}

/// Index of the largest logit.
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(logits: &[f32]) -> usize {
    assert!(!logits.is_empty(), "argmax of empty logits");
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty")
}

/// Indices of the top-k logits in descending order.
pub fn top_k(logits: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    idx.sort_by(|&a, &b| logits[b].total_cmp(&logits[a]));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::quant::{ActivationQuant, Requant, WeightQuant};

    fn unit_requant() -> Requant {
        Requant::new(
            ActivationQuant { scale: 1.0, bits: 8 },
            WeightQuant { scale: 1.0, bits: 8 },
            ActivationQuant { scale: 1.0, bits: 8 },
        )
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 kernel with weight 1 passes the input through.
        let conv = QConv2d {
            name: "id".into(),
            weights: Tensor::from_vec(&[1, 1, 1, 1], vec![1]),
            bias: vec![0.0],
            stride: 1,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[1, 2, 2], vec![1, 2, 3, 4]);
        let out = conv.forward(&input, &ExactEngine);
        assert_eq!(out.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn conv_hand_computed_3x3() {
        // 3x3 all-ones kernel over a 3x3 all-ones input, no padding:
        // single output = 9.
        let conv = QConv2d {
            name: "sum".into(),
            weights: Tensor::from_vec(&[1, 1, 3, 3], vec![1; 9]),
            bias: vec![0.0],
            stride: 1,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[1, 3, 3], vec![1; 9]);
        let out = conv.forward(&input, &ExactEngine);
        assert_eq!(out.dims(), &[1, 1, 1]);
        assert_eq!(out.as_slice(), &[9]);
    }

    #[test]
    fn conv_padding_zeros_border() {
        // Same kernel with padding 1: corners see only 4 live taps.
        let conv = QConv2d {
            name: "pad".into(),
            weights: Tensor::from_vec(&[1, 1, 3, 3], vec![1; 9]),
            bias: vec![0.0],
            stride: 1,
            padding: 1,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[1, 3, 3], vec![1; 9]);
        let out = conv.forward(&input, &ExactEngine);
        assert_eq!(out.dims(), &[1, 3, 3]);
        assert_eq!(out.at3(0, 0, 0), 4);
        assert_eq!(out.at3(0, 1, 1), 9);
        assert_eq!(out.at3(0, 0, 1), 6);
    }

    #[test]
    fn conv_stride_subsamples() {
        let conv = QConv2d {
            name: "s2".into(),
            weights: Tensor::from_vec(&[1, 1, 1, 1], vec![1]),
            bias: vec![0.0],
            stride: 2,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_fn(&[1, 4, 4], |i| i as u32);
        let out = conv.forward(&input, &ExactEngine);
        assert_eq!(out.dims(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[0, 2, 8, 10]);
    }

    #[test]
    fn conv_relu_clamps_negative_accumulators() {
        let conv = QConv2d {
            name: "neg".into(),
            weights: Tensor::from_vec(&[1, 1, 1, 1], vec![-1]),
            bias: vec![0.0],
            stride: 1,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[1, 1, 1], vec![5]);
        let out = conv.forward(&input, &ExactEngine);
        assert_eq!(out.as_slice(), &[0]);
    }

    #[test]
    fn depthwise_conv_keeps_channels_separate() {
        // 2 channels, depthwise 1x1 with weights [2, 3]: each channel
        // scales independently.
        let conv = QConv2d {
            name: "dw".into(),
            weights: Tensor::from_vec(&[2, 1, 1, 1], vec![2, 3]),
            bias: vec![0.0, 0.0],
            stride: 1,
            padding: 0,
            groups: 2,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[2, 1, 2], vec![1, 2, 10, 20]);
        let out = conv.forward(&input, &ExactEngine);
        assert_eq!(out.as_slice(), &[2, 4, 30, 60]);
    }

    #[test]
    fn conv_bias_applies_before_requant() {
        let conv = QConv2d {
            name: "bias".into(),
            weights: Tensor::from_vec(&[1, 1, 1, 1], vec![1]),
            bias: vec![10.0],
            stride: 1,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_vec(&[1, 1, 1], vec![5]);
        assert_eq!(conv.forward(&input, &ExactEngine).as_slice(), &[15]);
    }

    #[test]
    fn maxpool_basic() {
        let pool = MaxPool2d { kernel: 2, stride: 2, padding: 0 };
        let input = Tensor::<u32>::from_vec(&[1, 4, 4], (0..16).collect());
        let out = pool.forward(&input);
        assert_eq!(out.dims(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_overlapping_window() {
        // 3x3 window, stride 2, padding 1 — GoogleNet/ResNet style.
        let pool = MaxPool2d { kernel: 3, stride: 2, padding: 1 };
        let input = Tensor::<u32>::from_fn(&[1, 4, 4], |i| i as u32);
        let out = pool.forward(&input);
        assert_eq!(out.dims(), &[1, 2, 2]);
        assert_eq!(out.at3(0, 1, 1), 15);
    }

    #[test]
    fn global_avg_pool_rounds() {
        let input = Tensor::<u32>::from_vec(&[2, 1, 2], vec![1, 2, 10, 20]);
        let out = GlobalAvgPool.forward(&input);
        assert_eq!(out.dims(), &[2]);
        assert_eq!(out.as_slice(), &[2, 15]); // (1+2)/2 rounds to 2
    }

    #[test]
    fn fc_logits_with_bias() {
        let fc = QFc {
            name: "head".into(),
            weights: Tensor::from_vec(&[2, 3], vec![1, 0, -1, 2, 2, 2]),
            bias: vec![0.5, -1.0],
            dequant: 0.1,
        };
        let input = Tensor::<u32>::from_vec(&[3], vec![10, 20, 30]);
        let logits = fc.forward_logits(&input, &ExactEngine);
        // row0: 10 - 30 = -20 → -2.0 + 0.5 = -1.5
        // row1: 2*(60) = 120 → 12.0 - 1.0 = 11.0
        assert!((logits[0] + 1.5).abs() < 1e-6);
        assert!((logits[1] - 11.0).abs() < 1e-6);
        assert_eq!(argmax(&logits), 1);
    }

    #[test]
    fn top_k_ordering() {
        let logits = [0.1f32, 5.0, -2.0, 3.0];
        assert_eq!(top_k(&logits, 3), vec![1, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn conv_channel_mismatch_panics() {
        let conv = QConv2d {
            name: "bad".into(),
            weights: Tensor::from_vec(&[1, 2, 1, 1], vec![1, 1]),
            bias: vec![0.0],
            stride: 1,
            padding: 0,
            groups: 1,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::zeros(&[3, 2, 2]);
        let _ = conv.forward(&input, &ExactEngine);
    }
}
