//! Integer quantization — Section II / VI of the paper (8-bit
//! integer-quantized CNNs, per Krishnamoorthi's whitepaper \[6\]).
//!
//! The scheme matches what SCONNA's hardware consumes:
//!
//! * **activations** are post-ReLU, hence non-negative: affine-free
//!   unsigned quantization `q = round(x / scale)` into `[0, 2^B − 1]`
//!   (the paper's `I` streams carry no sign bit);
//! * **weights** are symmetric signed: `q = round(w / scale)` into
//!   `[−(2^B−1 − 1), 2^B−1 − 1]` (magnitude stream + sign bit for the
//!   filter MRR).

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Scale factor of an unsigned activation tensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationQuant {
    /// Real value represented by one integer step.
    pub scale: f32,
    /// Quantization bits `B`.
    pub bits: u8,
}

impl ActivationQuant {
    /// Derives the scale that maps `[0, max_value]` onto the full unsigned
    /// range.
    ///
    /// # Panics
    /// Panics if `max_value` is not finite and positive.
    pub fn fit(max_value: f32, bits: u8) -> Self {
        assert!(
            max_value.is_finite() && max_value > 0.0,
            "activation range must be positive, got {max_value}"
        );
        let qmax = ((1u32 << bits) - 1) as f32;
        Self {
            scale: max_value / qmax,
            bits,
        }
    }

    /// Largest representable code.
    pub fn qmax(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Quantizes one real activation (clamping; negatives clamp to 0,
    /// which is exactly ReLU's effect).
    pub fn quantize(&self, x: f32) -> u32 {
        ((x / self.scale).round().max(0.0) as u32).min(self.qmax())
    }

    /// Dequantizes one code.
    pub fn dequantize(&self, q: u32) -> f32 {
        q as f32 * self.scale
    }

    /// Quantizes a whole tensor.
    pub fn quantize_tensor(&self, x: &Tensor<f32>) -> Tensor<u32> {
        x.map(|v| self.quantize(v))
    }
}

/// Scale factor of a symmetric signed weight tensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightQuant {
    /// Real value represented by one integer step.
    pub scale: f32,
    /// Quantization bits `B`.
    pub bits: u8,
}

impl WeightQuant {
    /// Derives the symmetric scale from the weight tensor's max |w|.
    ///
    /// # Panics
    /// Panics if `max_abs` is not finite and positive.
    pub fn fit(max_abs: f32, bits: u8) -> Self {
        assert!(
            max_abs.is_finite() && max_abs > 0.0,
            "weight range must be positive, got {max_abs}"
        );
        let qmax = ((1i32 << (bits - 1)) - 1) as f32;
        Self {
            scale: max_abs / qmax,
            bits,
        }
    }

    /// Largest representable magnitude.
    pub fn qmax(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Quantizes one real weight (clamping).
    pub fn quantize(&self, w: f32) -> i32 {
        let q = (w / self.scale).round() as i32;
        q.clamp(-self.qmax(), self.qmax())
    }

    /// Dequantizes one code.
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }

    /// Quantizes a whole tensor.
    pub fn quantize_tensor(&self, w: &Tensor<f32>) -> Tensor<i32> {
        w.map(|v| self.quantize(v))
    }
}

/// Requantization of an integer accumulator into the next layer's
/// activation codes: `q_out = round(acc · in_scale · w_scale / out_scale)`
/// clamped to the unsigned range — ReLU is folded into the clamp at 0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Requant {
    /// Combined multiplier `in_scale · w_scale / out_scale`.
    pub multiplier: f32,
    /// Output bits.
    pub bits: u8,
}

impl Requant {
    /// Builds the requantizer for a layer.
    pub fn new(input: ActivationQuant, weights: WeightQuant, output: ActivationQuant) -> Self {
        Self {
            multiplier: input.scale * weights.scale / output.scale,
            bits: output.bits,
        }
    }

    /// Requantizes one accumulator value (f64 because SC engines return
    /// estimates). Branch-free — this runs once per conv output pixel on
    /// the inference hot path (a NaN accumulator saturates to 0, as the
    /// float→int cast did before).
    pub fn apply(&self, acc: f64) -> u32 {
        let qmax = (1u32 << self.bits) - 1;
        let v = (acc * self.multiplier as f64).round();
        v.clamp(0.0, qmax as f64) as u32
    }

    /// Requantizes keeping the sign (no ReLU clamp): the pre-activation
    /// code a residual branch carries to the skip addition. Saturates to
    /// `±qmax`.
    pub fn apply_signed(&self, acc: f64) -> i32 {
        let qmax = ((1u32 << self.bits) - 1) as f64;
        let v = (acc * self.multiplier as f64).round().clamp(-qmax, qmax);
        v as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_roundtrip_within_half_step() {
        let q = ActivationQuant::fit(6.0, 8);
        for i in 0..100 {
            let x = 6.0 * i as f32 / 100.0;
            let code = q.quantize(x);
            let back = q.dequantize(code);
            assert!((back - x).abs() <= q.scale / 2.0 + 1e-6, "x={x}");
        }
    }

    #[test]
    fn activation_clamps_negatives_and_overflow() {
        let q = ActivationQuant::fit(1.0, 8);
        assert_eq!(q.quantize(-3.0), 0);
        assert_eq!(q.quantize(99.0), 255);
        assert_eq!(q.qmax(), 255);
    }

    #[test]
    fn weight_symmetric_range() {
        let q = WeightQuant::fit(2.0, 8);
        assert_eq!(q.qmax(), 127);
        assert_eq!(q.quantize(2.0), 127);
        assert_eq!(q.quantize(-2.0), -127);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn weight_roundtrip_within_half_step() {
        let q = WeightQuant::fit(1.5, 8);
        for i in -50..=50 {
            let w = 1.5 * i as f32 / 50.0;
            let back = q.dequantize(q.quantize(w));
            assert!((back - w).abs() <= q.scale / 2.0 + 1e-6, "w={w}");
        }
    }

    #[test]
    fn requant_scales_accumulator() {
        let input = ActivationQuant {
            scale: 0.1,
            bits: 8,
        };
        let weights = WeightQuant {
            scale: 0.01,
            bits: 8,
        };
        let output = ActivationQuant {
            scale: 0.05,
            bits: 8,
        };
        let r = Requant::new(input, weights, output);
        // acc = 1000 integer units ≙ 1000·0.1·0.01 = 1.0 real → 20 codes.
        assert_eq!(r.apply(1000.0), 20);
        // Negative accumulators ReLU to zero.
        assert_eq!(r.apply(-500.0), 0);
    }

    #[test]
    fn requant_saturates() {
        let input = ActivationQuant {
            scale: 1.0,
            bits: 8,
        };
        let weights = WeightQuant {
            scale: 1.0,
            bits: 8,
        };
        let output = ActivationQuant {
            scale: 1.0,
            bits: 8,
        };
        let r = Requant::new(input, weights, output);
        assert_eq!(r.apply(1e9), 255);
    }

    #[test]
    fn four_bit_ranges() {
        let a = ActivationQuant::fit(1.0, 4);
        let w = WeightQuant::fit(1.0, 4);
        assert_eq!(a.qmax(), 15);
        assert_eq!(w.qmax(), 7);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_range_panics() {
        let _ = ActivationQuant::fit(0.0, 8);
    }
}
