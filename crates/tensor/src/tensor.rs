//! Dense CHW tensors.
//!
//! The inference substrate works on single images (the paper evaluates at
//! batch size 1), so tensors are rank-3 `(channels, height, width)` for
//! feature maps, rank-1 for fully-connected activations, and rank-4
//! `(kernels, channels, kh, kw)` for convolution weights. One generic
//! container covers all of them with explicit dimension accessors.

use std::fmt;

/// A dense row-major tensor over element type `T`.
#[derive(Clone, PartialEq)]
pub struct Tensor<T> {
    dims: Vec<usize>,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a tensor of the given shape filled with `T::default()`.
    ///
    /// # Panics
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(dims: &[usize]) -> Self {
        let len = checked_len(dims);
        Self {
            dims: dims.to_vec(),
            data: vec![T::default(); len],
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape.
    pub fn from_vec(dims: &[usize], data: Vec<T>) -> Self {
        let len = checked_len(dims);
        assert_eq!(
            data.len(),
            len,
            "buffer length {} does not match shape {:?}",
            data.len(),
            dims
        );
        Self {
            dims: dims.to_vec(),
            data,
        }
    }

    /// Consumes the tensor, returning its flat row-major buffer (the
    /// recycling hook of [`crate::arena::BatchArena`]).
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> T) -> Self {
        let len = checked_len(dims);
        Self {
            dims: dims.to_vec(),
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// Shape of the tensor.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements (never true for validly
    /// constructed tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat immutable view.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Flat mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Element at `(c, h, w)` of a rank-3 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not rank-3 or the index is out of bounds.
    #[inline]
    pub fn at3(&self, c: usize, h: usize, w: usize) -> T {
        debug_assert_eq!(self.dims.len(), 3, "at3 on rank-{} tensor", self.dims.len());
        let (ch, hh, ww) = (self.dims[0], self.dims[1], self.dims[2]);
        assert!(
            c < ch && h < hh && w < ww,
            "index ({c},{h},{w}) out of {:?}",
            self.dims
        );
        self.data[(c * hh + h) * ww + w]
    }

    /// Sets element `(c, h, w)` of a rank-3 tensor.
    #[inline]
    pub fn set3(&mut self, c: usize, h: usize, w: usize, v: T) {
        debug_assert_eq!(self.dims.len(), 3);
        let (ch, hh, ww) = (self.dims[0], self.dims[1], self.dims[2]);
        assert!(
            c < ch && h < hh && w < ww,
            "index ({c},{h},{w}) out of {:?}",
            self.dims
        );
        self.data[(c * hh + h) * ww + w] = v;
    }

    /// Element at `(k, c, y, x)` of a rank-4 tensor (conv weights).
    #[inline]
    pub fn at4(&self, k: usize, c: usize, y: usize, x: usize) -> T {
        debug_assert_eq!(self.dims.len(), 4, "at4 on rank-{} tensor", self.dims.len());
        let (kk, cc, yy, xx) = (self.dims[0], self.dims[1], self.dims[2], self.dims[3]);
        assert!(
            k < kk && c < cc && y < yy && x < xx,
            "index ({k},{c},{y},{x}) out of {:?}",
            self.dims
        );
        self.data[((k * cc + c) * yy + y) * xx + x]
    }

    /// Sets element `(k, c, y, x)` of a rank-4 tensor.
    #[inline]
    pub fn set4(&mut self, k: usize, c: usize, y: usize, x: usize, v: T) {
        debug_assert_eq!(self.dims.len(), 4);
        let (kk, cc, yy, xx) = (self.dims[0], self.dims[1], self.dims[2], self.dims[3]);
        assert!(
            k < kk && c < cc && y < yy && x < xx,
            "index ({k},{c},{y},{x}) out of {:?}",
            self.dims
        );
        self.data[((k * cc + c) * yy + y) * xx + x] = v;
    }

    /// Applies `f` element-wise, producing a new tensor of type `U`.
    pub fn map<U: Copy + Default>(&self, f: impl Fn(T) -> U) -> Tensor<U> {
        Tensor {
            dims: self.dims.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Reshapes in place to a shape with the same element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&mut self, dims: &[usize]) {
        let len = checked_len(dims);
        assert_eq!(
            len,
            self.data.len(),
            "reshape {:?} -> {:?}",
            self.dims,
            dims
        );
        self.dims = dims.to_vec();
    }
}

impl Tensor<f32> {
    /// Maximum absolute value (0 for the degenerate all-zero tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

fn checked_len(dims: &[usize]) -> usize {
    assert!(!dims.is_empty(), "tensor rank must be at least 1");
    dims.iter()
        .map(|&d| {
            assert!(d > 0, "zero-sized dimension in {dims:?}");
            d
        })
        .product()
}

impl<T: Copy + Default + fmt::Debug> fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}[", self.dims)?;
        let shown = self.data.len().min(8);
        for (i, v) in self.data[..shown].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        if self.data.len() > shown {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_len() {
        let t = Tensor::<f32>::zeros(&[3, 4, 5]);
        assert_eq!(t.dims(), &[3, 4, 5]);
        assert_eq!(t.len(), 60);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rank3_indexing_roundtrip() {
        let mut t = Tensor::<i32>::zeros(&[2, 3, 4]);
        t.set3(1, 2, 3, 42);
        t.set3(0, 0, 0, -7);
        assert_eq!(t.at3(1, 2, 3), 42);
        assert_eq!(t.at3(0, 0, 0), -7);
        assert_eq!(t.at3(1, 2, 2), 0);
    }

    #[test]
    fn rank4_indexing_roundtrip() {
        let mut t = Tensor::<i8>::zeros(&[2, 3, 2, 2]);
        t.set4(1, 2, 1, 0, 5);
        assert_eq!(t.at4(1, 2, 1, 0), 5);
        // Row-major layout: flat index ((k*C + c)*KH + y)*KW + x.
        assert_eq!(t.as_slice()[((3 + 2) * 2 + 1) * 2], 5);
    }

    #[test]
    fn from_fn_fills_in_flat_order() {
        let t = Tensor::<usize>::from_fn(&[2, 2], |i| i * 10);
        assert_eq!(t.as_slice(), &[0, 10, 20, 30]);
    }

    #[test]
    fn map_changes_type() {
        let t = Tensor::<u8>::from_vec(&[4], vec![1, 2, 3, 4]);
        let f = t.map(|v| v as f32 * 0.5);
        assert_eq!(f.as_slice(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::<i32>::from_vec(&[2, 6], (0..12).collect());
        t.reshape(&[3, 4]);
        assert_eq!(t.dims(), &[3, 4]);
        assert_eq!(t.as_slice()[11], 11);
    }

    #[test]
    fn max_abs_handles_negatives() {
        let t = Tensor::<f32>::from_vec(&[3], vec![-2.5, 1.0, 2.0]);
        assert_eq!(t.max_abs(), 2.5);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::<u8>::from_vec(&[2, 2], vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "zero-sized dimension")]
    fn zero_dim_panics() {
        let _ = Tensor::<u8>::zeros(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_bounds_panics() {
        let t = Tensor::<u8>::zeros(&[2, 2, 2]);
        let _ = t.at3(2, 0, 0);
    }
}
