//! Pluggable vector-dot-product engines.
//!
//! Every quantized layer reduces to VDP operations between an unsigned
//! input vector and a signed weight vector (Section II-B). The engine
//! trait abstracts *how* that VDP is computed: exactly in binary integer
//! arithmetic (the functional reference), or through the SCONNA stochastic
//! pipeline with its rounding and ADC error (implemented in
//! `sconna-accel`, which layers the photonics models on top).
//!
//! Engines return `f64` because hardware engines produce estimates; the
//! exact engine's result is integral by construction.

/// Computes vector dot products between quantized operand vectors.
pub trait VdpEngine: Sync {
    /// Estimates `Σ inputs[k] · weights[k]` in integer-product units.
    ///
    /// # Panics
    /// Implementations panic if the slices differ in length.
    fn vdp(&self, inputs: &[u32], weights: &[i32]) -> f64;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Bit-exact binary reference engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactEngine;

impl VdpEngine for ExactEngine {
    fn vdp(&self, inputs: &[u32], weights: &[i32]) -> f64 {
        assert_eq!(inputs.len(), weights.len(), "vector length mismatch");
        inputs
            .iter()
            .zip(weights)
            .map(|(&i, &w)| i as i64 * w as i64)
            .sum::<i64>() as f64
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_engine_small_cases() {
        let e = ExactEngine;
        assert_eq!(e.vdp(&[], &[]), 0.0);
        assert_eq!(e.vdp(&[1, 2, 3], &[4, -5, 6]), (4 - 10 + 18) as f64);
        assert_eq!(e.vdp(&[255; 4], &[-127; 4]), -4.0 * 255.0 * 127.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn exact_engine_length_mismatch() {
        let _ = ExactEngine.vdp(&[1], &[1, 2]);
    }
}
