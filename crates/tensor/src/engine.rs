//! Pluggable vector-dot-product engines and the batched matrix API.
//!
//! Every quantized layer reduces to VDP operations between an unsigned
//! input vector and a signed weight vector (Section II-B). The engine
//! trait abstracts *how* that VDP is computed: exactly in binary integer
//! arithmetic (the functional reference), or through the SCONNA stochastic
//! pipeline with its rounding and ADC error (implemented in
//! `sconna-accel`, which layers the photonics models on top).
//!
//! Three API levels exist:
//!
//! * [`VdpEngine::vdp_keyed`] — one vector pair, plus a caller-supplied
//!   **noise key**. Engines with stochastic error (the ADC model) derive
//!   their noise deterministically from the key, so a call's result is a
//!   pure function of `(inputs, weights, key)` — independent of call
//!   order, thread interleaving, and any other call's existence.
//! * [`VdpEngine::vdp_batch`] — a whole patch-matrix × kernel-matrix
//!   tile. This is the inference hot path: `im2col`-gathered patches hit
//!   every kernel of a layer in one call, letting engines run blocked
//!   GEMM (exact) or amortize per-call setup over the tile (SCONNA).
//!   The contract is bit-exact equivalence with per-pair `vdp_keyed`
//!   under [`combine_keys`], property-tested in `tests/`.
//! * [`VdpEngine::vdp_batch_prepared`] — the same tile against a
//!   [`PreparedWeights`] handle built once by
//!   [`VdpEngine::prepare_weights`] at model load. This is the
//!   **weight-stationary** API the hardware mapping assumes: whatever
//!   per-call derivation an engine performs on the weight matrix (the
//!   exact engine's narrow-GEMM i16 form and overflow bound, the SCONNA
//!   engine's clamped LUT stream addresses, sign steering bits and
//!   range-matched ADC parameters) is hoisted into the handle, so a
//!   layer's weights are transformed once and then hit by every row
//!   block of every request. The contract is bit-exact equivalence with
//!   [`VdpEngine::vdp_batch`] on the same raw weights.
//!
//! Engines return `f64` because hardware engines produce estimates; the
//! exact engine's result is integral by construction.
//!
//! ```
//! use sconna_tensor::engine::{ExactEngine, PatchMatrix, PreparedWeights, VdpEngine, WeightMatrix};
//!
//! let weights = vec![1i32, -2, 3, 4, 5, -6];
//! let wm = WeightMatrix::new(&weights, 2, 3);
//! let prepared: PreparedWeights = ExactEngine.prepare_weights(&wm);   // once, at model load
//! let patches = PatchMatrix::from_vec(1, 3, vec![7, 8, 9]);
//! let fast = ExactEngine.vdp_batch_prepared(&patches, &prepared, &[0]); // per row block
//! assert_eq!(fast, ExactEngine.vdp_batch(&patches, &wm, &[0]));
//! ```

/// Dense row-major matrix of unsigned operand vectors — the product of an
/// im2col gather: row `p` is the flattened input patch of one output
/// position.
#[derive(Debug, Clone, Default)]
pub struct PatchMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u32>,
}

impl PatchMatrix {
    /// Creates a zero-filled matrix of `rows` patches of length `cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer length is not `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<u32>) -> Self {
        assert_eq!(data.len(), rows * cols, "patch buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Re-shapes the matrix in place to `rows × cols`, zero-filled —
    /// observationally identical to a fresh [`PatchMatrix::zeros`], but
    /// reusing the retained buffer capacity (the arena-reuse hook of
    /// [`crate::arena::ConvScratch`]).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0);
    }

    /// Number of patches.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Patch (vector) length.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of patch `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of patch `r` (filled by the im2col gather).
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of all patches.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.data
    }
}

/// Borrowed row-major view of signed kernel vectors: row `k` is one
/// kernel's flattened weights. Borrowing (rather than owning) lets conv
/// layers alias their weight tensor directly — kernels of one group are
/// contiguous in the `[L, D/g, K, K]` layout.
#[derive(Debug, Clone, Copy)]
pub struct WeightMatrix<'a> {
    rows: usize,
    cols: usize,
    data: &'a [i32],
}

impl<'a> WeightMatrix<'a> {
    /// Wraps a flat row-major weight slice.
    ///
    /// # Panics
    /// Panics if the slice length is not `rows * cols`.
    pub fn new(data: &'a [i32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "weight buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Number of kernel vectors.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Kernel (vector) length.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of kernel `k`.
    #[inline]
    pub fn row(&self, k: usize) -> &'a [i32] {
        &self.data[k * self.cols..(k + 1) * self.cols]
    }

    /// Flat row-major view of all kernels.
    #[inline]
    pub fn as_slice(&self) -> &'a [i32] {
        self.data
    }
}

/// A per-layer weight matrix transformed once into an engine's preferred
/// execution form — the weight-stationary handle of the batched API.
///
/// The handle always owns the raw signed weight matrix (so any engine can
/// fall back to the generic path), plus an opaque engine-specific payload
/// stamped with the preparing engine's [`VdpEngine::name`]:
///
/// * [`ExactEngine`] stores the narrowed `i16` weight form and the
///   worst-case weight magnitude of its overflow guard, so the blocked
///   GEMM never re-derives them per row-block call.
/// * The SCONNA engine (in `sconna-accel`) stores the clamped LUT
///   stream addresses (the DKV-converted `Wb` operands), the sign
///   steering bits, and the range-matched per-chunk ADC models.
///
/// Handles are built by [`VdpEngine::prepare_weights`] and consumed by
/// [`VdpEngine::vdp_batch_prepared`]; an engine handed a foreign handle
/// (different `engine_name`) must ignore the payload and compute from the
/// raw weights, so results never depend on which engine prepared the
/// handle.
pub struct PreparedWeights {
    rows: usize,
    cols: usize,
    weights: Vec<i32>,
    engine_name: &'static str,
    payload: Option<Box<dyn std::any::Any + Send + Sync>>,
}

impl std::fmt::Debug for PreparedWeights {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedWeights")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("engine_name", &self.engine_name)
            .field("has_payload", &self.payload.is_some())
            .finish()
    }
}

impl PreparedWeights {
    /// Wraps a weight matrix with no engine-specific payload — what the
    /// default [`VdpEngine::prepare_weights`] produces.
    pub fn raw(engine_name: &'static str, weights: &WeightMatrix<'_>) -> Self {
        Self {
            rows: weights.rows(),
            cols: weights.cols(),
            weights: weights.as_slice().to_vec(),
            engine_name,
            payload: None,
        }
    }

    /// Wraps a weight matrix together with an engine-specific payload.
    pub fn with_payload(
        engine_name: &'static str,
        weights: &WeightMatrix<'_>,
        payload: impl std::any::Any + Send + Sync,
    ) -> Self {
        Self {
            payload: Some(Box::new(payload)),
            ..Self::raw(engine_name, weights)
        }
    }

    /// Number of kernel vectors.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Kernel (vector) length.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Name of the engine that built the handle.
    pub fn engine_name(&self) -> &'static str {
        self.engine_name
    }

    /// Borrowed view of the raw weight matrix — the generic fallback any
    /// engine can execute.
    pub fn as_matrix(&self) -> WeightMatrix<'_> {
        WeightMatrix::new(&self.weights, self.rows, self.cols)
    }

    /// Downcasts the engine payload, if one of type `T` is present.
    pub fn payload<T: std::any::Any>(&self) -> Option<&T> {
        self.payload.as_ref()?.downcast_ref::<T>()
    }
}

/// SplitMix64 finalizer: the bijective avalanche mix used everywhere a
/// structured index (layer, pixel, kernel, chunk) must become a
/// decorrelated noise-stream key.
#[inline]
pub fn mix_key(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines a patch-level key with a kernel-row index (or any two key
/// components) into one noise key. Non-commutative and collision-resistant
/// for the index ranges layers produce. [`VdpEngine::vdp_batch`] derives
/// each pair's key as `combine_keys(keys[p], k)` — overrides must do the
/// same to stay bit-compatible with the per-vector path.
#[inline]
pub fn combine_keys(a: u64, b: u64) -> u64 {
    mix_key(a ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03))
}

/// Computes vector dot products between quantized operand vectors.
pub trait VdpEngine: Sync {
    /// Estimates `Σ inputs[k] · weights[k]` in integer-product units,
    /// deriving any stochastic error (e.g. ADC noise) deterministically
    /// from `key`: the result is a pure function of
    /// `(inputs, weights, key)`, independent of call order or thread
    /// interleaving.
    ///
    /// # Panics
    /// Implementations panic if the slices differ in length.
    fn vdp_keyed(&self, inputs: &[u32], weights: &[i32], key: u64) -> f64;

    /// Estimates `Σ inputs[k] · weights[k]` with the default key.
    ///
    /// # Panics
    /// Implementations panic if the slices differ in length.
    fn vdp(&self, inputs: &[u32], weights: &[i32]) -> f64 {
        self.vdp_keyed(inputs, weights, 0)
    }

    /// Batched matrix VDP over a patch × kernel tile: returns the
    /// `patches.rows() × weights.rows()` accumulator matrix row-major by
    /// patch, where entry `(p, k)` **must** equal
    /// `vdp_keyed(patches.row(p), weights.row(k), combine_keys(keys[p], k))`
    /// bit for bit — overrides exist for speed, never for different
    /// results.
    ///
    /// # Panics
    /// Panics if the inner dimensions differ or `keys` is not one key per
    /// patch.
    fn vdp_batch(
        &self,
        patches: &PatchMatrix,
        weights: &WeightMatrix<'_>,
        keys: &[u64],
    ) -> Vec<f64> {
        assert_eq!(
            patches.cols(),
            weights.cols(),
            "patch/kernel vector length mismatch"
        );
        assert_eq!(keys.len(), patches.rows(), "one noise key per patch");
        let mut out = Vec::with_capacity(patches.rows() * weights.rows());
        for (p, &pkey) in keys.iter().enumerate() {
            let prow = patches.row(p);
            for k in 0..weights.rows() {
                out.push(self.vdp_keyed(prow, weights.row(k), combine_keys(pkey, k as u64)));
            }
        }
        out
    }

    /// Transforms a weight matrix into this engine's execution form
    /// **once**, at model load. The default keeps only the raw weights;
    /// engines override it to hoist whatever per-call weight derivation
    /// their [`VdpEngine::vdp_batch`] performs.
    fn prepare_weights(&self, weights: &WeightMatrix<'_>) -> PreparedWeights {
        PreparedWeights::raw(self.name(), weights)
    }

    /// [`VdpEngine::vdp_batch`] against a prepared handle: entry `(p, k)`
    /// **must** equal `vdp_batch(patches, &weights.as_matrix(), keys)`
    /// bit for bit — preparation exists to move work, never to change
    /// results. Engines handed a handle they did not prepare (foreign
    /// [`PreparedWeights::engine_name`]) must fall back to the raw
    /// matrix.
    ///
    /// # Panics
    /// Panics if the inner dimensions differ or `keys` is not one key per
    /// patch.
    fn vdp_batch_prepared(
        &self,
        patches: &PatchMatrix,
        weights: &PreparedWeights,
        keys: &[u64],
    ) -> Vec<f64> {
        self.vdp_batch(patches, &weights.as_matrix(), keys)
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Bit-exact binary reference engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactEngine;

/// [`ExactEngine`]'s prepared weight form: the narrowed i16 copy and the
/// worst-case weight magnitude of the overflow guard, derived once per
/// layer instead of per row-block call.
#[derive(Debug)]
struct ExactPrepared {
    /// i16 weight copy; present iff every weight fits i16.
    w16: Option<Vec<i16>>,
    /// Largest |w| — the weight side of the i32-accumulator guard.
    max_w: i64,
}

impl ExactPrepared {
    fn derive(weights: &WeightMatrix<'_>) -> Self {
        let max_w = weights
            .as_slice()
            .iter()
            .map(|w| w.unsigned_abs() as i64)
            .max()
            .unwrap_or(0);
        let w16 = (max_w <= i16::MAX as i64)
            .then(|| weights.as_slice().iter().map(|&x| x as i16).collect());
        Self { w16, max_w }
    }
}

impl ExactEngine {
    /// Dispatches one tile to the narrow or wide micro-kernel. The narrow
    /// path runs iff every operand fits i16 **and** the worst-case
    /// accumulator `max_i · max_w · s` fits i32; both paths produce the
    /// same exact integers, so the choice can never change a result.
    fn gemm_tile(
        patches: &PatchMatrix,
        weights: &WeightMatrix<'_>,
        prep: &ExactPrepared,
        out: &mut [f64],
    ) {
        let (pr, kr, s) = (patches.rows(), weights.rows(), patches.cols());
        if pr == 0 || kr == 0 {
            return;
        }
        let max_i = patches.as_slice().iter().copied().max().unwrap_or(0) as i64;
        let narrow = max_i <= i16::MAX as i64
            && prep.w16.is_some()
            && (max_i * prep.max_w)
                .checked_mul(s as i64)
                .is_some_and(|v| v <= i32::MAX as i64);
        match (&prep.w16, narrow) {
            (Some(w16), true) => {
                let p16: Vec<i16> = patches.as_slice().iter().map(|&x| x as i16).collect();
                gemm_narrow(&p16, w16, pr, kr, s, out);
            }
            _ => gemm_wide(patches, weights, out),
        }
    }
}

impl VdpEngine for ExactEngine {
    fn vdp_keyed(&self, inputs: &[u32], weights: &[i32], _key: u64) -> f64 {
        assert_eq!(inputs.len(), weights.len(), "vector length mismatch");
        inputs
            .iter()
            .zip(weights)
            .map(|(&i, &w)| i as i64 * w as i64)
            .sum::<i64>() as f64
    }

    /// Blocked integer GEMM with a guarded narrow fast path.
    ///
    /// When every operand fits in i16 and the worst-case accumulator
    /// fits in i32 — true for every 8-bit-quantized CNN layer — the
    /// 1×4 micro-kernel runs `i32 += i16·i16`, the multiply-add shape
    /// the auto-vectorizer turns into `pmaddwd`-class SIMD on baseline
    /// x86-64. Otherwise it falls back to the same micro-kernel over
    /// i64. Both are exactly equal to the per-vector path — integer
    /// addition is associative and no product or sum can overflow its
    /// accumulator under the guard.
    ///
    /// This unprepared entry point re-derives the i16 weight form per
    /// call; [`VdpEngine::vdp_batch_prepared`] hoists that into a
    /// once-per-layer [`PreparedWeights`] handle.
    fn vdp_batch(
        &self,
        patches: &PatchMatrix,
        weights: &WeightMatrix<'_>,
        keys: &[u64],
    ) -> Vec<f64> {
        assert_eq!(
            patches.cols(),
            weights.cols(),
            "patch/kernel vector length mismatch"
        );
        assert_eq!(keys.len(), patches.rows(), "one noise key per patch");
        let mut out = vec![0.0f64; patches.rows() * weights.rows()];
        Self::gemm_tile(patches, weights, &ExactPrepared::derive(weights), &mut out);
        out
    }

    fn prepare_weights(&self, weights: &WeightMatrix<'_>) -> PreparedWeights {
        PreparedWeights::with_payload(self.name(), weights, ExactPrepared::derive(weights))
    }

    /// The weight-stationary GEMM: the i16 weight form and guard bound
    /// come from the handle; only the (per-call) patch side is inspected
    /// and narrowed here.
    fn vdp_batch_prepared(
        &self,
        patches: &PatchMatrix,
        weights: &PreparedWeights,
        keys: &[u64],
    ) -> Vec<f64> {
        let wm = weights.as_matrix();
        let Some(prep) = weights.payload::<ExactPrepared>() else {
            // Foreign or payload-free handle: generic path on raw weights.
            return self.vdp_batch(patches, &wm, keys);
        };
        assert_eq!(
            patches.cols(),
            wm.cols(),
            "patch/kernel vector length mismatch"
        );
        assert_eq!(keys.len(), patches.rows(), "one noise key per patch");
        let mut out = vec![0.0f64; patches.rows() * wm.rows()];
        Self::gemm_tile(patches, &wm, prep, &mut out);
        out
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

/// 1×4 i16 → i32 micro-kernel (see [`ExactEngine::vdp_batch`] for the
/// overflow guard that makes i32 accumulation exact).
fn gemm_narrow(p16: &[i16], w16: &[i16], pr: usize, kr: usize, s: usize, out: &mut [f64]) {
    for pi in 0..pr {
        let prow = &p16[pi * s..(pi + 1) * s];
        let orow = &mut out[pi * kr..(pi + 1) * kr];
        let mut k = 0;
        while k + 4 <= kr {
            let w0 = &w16[k * s..(k + 1) * s];
            let w1 = &w16[(k + 1) * s..(k + 2) * s];
            let w2 = &w16[(k + 2) * s..(k + 3) * s];
            let w3 = &w16[(k + 3) * s..(k + 4) * s];
            let (mut a0, mut a1, mut a2, mut a3) = (0i32, 0i32, 0i32, 0i32);
            for (idx, &x) in prow.iter().enumerate() {
                let x = x as i32;
                a0 += x * w0[idx] as i32;
                a1 += x * w1[idx] as i32;
                a2 += x * w2[idx] as i32;
                a3 += x * w3[idx] as i32;
            }
            orow[k] = a0 as f64;
            orow[k + 1] = a1 as f64;
            orow[k + 2] = a2 as f64;
            orow[k + 3] = a3 as f64;
            k += 4;
        }
        while k < kr {
            let wrow = &w16[k * s..(k + 1) * s];
            let mut acc = 0i32;
            for (idx, &x) in prow.iter().enumerate() {
                acc += x as i32 * wrow[idx] as i32;
            }
            orow[k] = acc as f64;
            k += 1;
        }
    }
}

/// 1×4 i64 fallback for operands outside the narrow guard.
fn gemm_wide(patches: &PatchMatrix, weights: &WeightMatrix<'_>, out: &mut [f64]) {
    let (pr, kr) = (patches.rows(), weights.rows());
    for pi in 0..pr {
        let prow = patches.row(pi);
        let orow = &mut out[pi * kr..(pi + 1) * kr];
        let mut k = 0;
        while k + 4 <= kr {
            let w0 = weights.row(k);
            let w1 = weights.row(k + 1);
            let w2 = weights.row(k + 2);
            let w3 = weights.row(k + 3);
            let (mut a0, mut a1, mut a2, mut a3) = (0i64, 0i64, 0i64, 0i64);
            for (idx, &x) in prow.iter().enumerate() {
                let x = x as i64;
                a0 += x * w0[idx] as i64;
                a1 += x * w1[idx] as i64;
                a2 += x * w2[idx] as i64;
                a3 += x * w3[idx] as i64;
            }
            orow[k] = a0 as f64;
            orow[k + 1] = a1 as f64;
            orow[k + 2] = a2 as f64;
            orow[k + 3] = a3 as f64;
            k += 4;
        }
        while k < kr {
            let wrow = weights.row(k);
            let mut acc = 0i64;
            for (idx, &x) in prow.iter().enumerate() {
                acc += x as i64 * wrow[idx] as i64;
            }
            orow[k] = acc as f64;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_engine_small_cases() {
        let e = ExactEngine;
        assert_eq!(e.vdp(&[], &[]), 0.0);
        assert_eq!(e.vdp(&[1, 2, 3], &[4, -5, 6]), (4 - 10 + 18) as f64);
        assert_eq!(e.vdp(&[255; 4], &[-127; 4]), -4.0 * 255.0 * 127.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn exact_engine_length_mismatch() {
        let _ = ExactEngine.vdp(&[1], &[1, 2]);
    }

    #[test]
    fn exact_engine_key_is_irrelevant() {
        let (i, w) = (vec![7u32, 9, 200], vec![3i32, -4, 11]);
        assert_eq!(
            ExactEngine.vdp_keyed(&i, &w, 0),
            ExactEngine.vdp_keyed(&i, &w, u64::MAX)
        );
    }

    fn test_tile(rows: usize, kernels: usize, cols: usize) -> (PatchMatrix, Vec<i32>, Vec<u64>) {
        let patches = PatchMatrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| ((i * 37) % 256) as u32).collect(),
        );
        let weights: Vec<i32> = (0..kernels * cols)
            .map(|i| ((i * 53) % 255) as i32 - 127)
            .collect();
        let keys: Vec<u64> = (0..rows as u64).map(mix_key).collect();
        (patches, weights, keys)
    }

    #[test]
    fn exact_gemm_matches_per_vector_path() {
        // Covers the 4-wide micro-kernel and the ragged kernel tail.
        for kernels in [1usize, 3, 4, 5, 8, 11] {
            let (patches, weights, keys) = test_tile(5, kernels, 37);
            let wm = WeightMatrix::new(&weights, kernels, 37);
            let got = ExactEngine.vdp_batch(&patches, &wm, &keys);
            for p in 0..5 {
                for k in 0..kernels {
                    assert_eq!(
                        got[p * kernels + k],
                        ExactEngine.vdp(patches.row(p), wm.row(k)),
                        "p={p} k={k} kernels={kernels}"
                    );
                }
            }
        }
    }

    #[test]
    fn default_batch_impl_applies_combined_keys() {
        // A probe engine that returns its key, to pin the key-derivation
        // contract the default impl (and every override) must follow.
        struct KeyProbe;
        impl VdpEngine for KeyProbe {
            fn vdp_keyed(&self, _i: &[u32], _w: &[i32], key: u64) -> f64 {
                key as f64
            }
            fn name(&self) -> &'static str {
                "probe"
            }
        }
        let (patches, weights, keys) = test_tile(3, 2, 4);
        let wm = WeightMatrix::new(&weights, 2, 4);
        let got = KeyProbe.vdp_batch(&patches, &wm, &keys);
        for p in 0..3 {
            for k in 0..2u64 {
                assert_eq!(
                    got[p * 2 + k as usize],
                    combine_keys(keys[p], k) as f64,
                    "p={p} k={k}"
                );
            }
        }
    }

    #[test]
    fn exact_gemm_wide_operands_match_per_vector_path() {
        // Operands outside the narrow i16/i32 guard must take the i64
        // fallback and still agree with the per-vector path exactly.
        let cols = 6;
        let patches = PatchMatrix::from_vec(
            2,
            cols,
            vec![u32::MAX, 70_000, 3, 0, 255, 1, 9, 40_000, 2, 255, 0, 77],
        );
        let weights: Vec<i32> = vec![
            i32::MAX,
            -40_000,
            5,
            -1,
            2,
            7, //
            -3,
            90_000,
            i32::MIN + 1,
            4,
            -255,
            0,
        ];
        let wm = WeightMatrix::new(&weights, 2, cols);
        let got = ExactEngine.vdp_batch(&patches, &wm, &[0, 1]);
        for p in 0..2 {
            for k in 0..2 {
                assert_eq!(got[p * 2 + k], ExactEngine.vdp(patches.row(p), wm.row(k)));
            }
        }
    }

    #[test]
    fn narrow_guard_accounts_for_accumulator_magnitude() {
        // Operands individually fit i16 but the worst-case sum overflows
        // i32 — the guard must reject the narrow path, and the result
        // must still be exact. 8192 elements of 32767 × 32767 sums to
        // ~8.8e12, far past i32 but exact in i64 → f64.
        let s = 8192usize;
        let patches = PatchMatrix::from_vec(1, s, vec![32_767u32; s]);
        let weights = vec![32_767i32; s];
        let wm = WeightMatrix::new(&weights, 1, s);
        let got = ExactEngine.vdp_batch(&patches, &wm, &[0]);
        assert_eq!(got[0], s as f64 * 32_767.0 * 32_767.0);
    }

    #[test]
    fn prepared_batch_matches_unprepared_batch() {
        for (rows, kernels, cols) in [(5usize, 7usize, 37usize), (1, 1, 0), (3, 4, 8)] {
            let (patches, weights, keys) = test_tile(rows, kernels, cols);
            let wm = WeightMatrix::new(&weights, kernels, cols);
            let prepared = ExactEngine.prepare_weights(&wm);
            assert_eq!(prepared.engine_name(), "exact");
            assert_eq!(prepared.rows(), kernels);
            assert_eq!(prepared.cols(), cols);
            assert_eq!(prepared.as_matrix().as_slice(), wm.as_slice());
            assert_eq!(
                ExactEngine.vdp_batch_prepared(&patches, &prepared, &keys),
                ExactEngine.vdp_batch(&patches, &wm, &keys),
                "rows={rows} kernels={kernels} cols={cols}"
            );
        }
    }

    #[test]
    fn prepared_wide_weights_skip_the_narrow_form() {
        // Weights outside i16 must prepare without a narrow copy and
        // still agree with the unprepared path.
        let cols = 4;
        let weights = vec![i32::MAX, -70_000, 3, 1, 9, 40_000, i32::MIN + 1, 2];
        let wm = WeightMatrix::new(&weights, 2, cols);
        let prepared = ExactEngine.prepare_weights(&wm);
        assert!(prepared
            .payload::<ExactPrepared>()
            .expect("payload")
            .w16
            .is_none());
        let patches = PatchMatrix::from_vec(2, cols, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(
            ExactEngine.vdp_batch_prepared(&patches, &prepared, &[0, 1]),
            ExactEngine.vdp_batch(&patches, &wm, &[0, 1])
        );
    }

    #[test]
    fn prepared_guard_still_tracks_patch_magnitude() {
        // Narrow weight form present, but huge *inputs* must push the
        // prepared path onto the wide kernel — and stay exact.
        let s = 8192usize;
        let weights = vec![32_767i32; s];
        let wm = WeightMatrix::new(&weights, 1, s);
        let prepared = ExactEngine.prepare_weights(&wm);
        assert!(prepared
            .payload::<ExactPrepared>()
            .expect("payload")
            .w16
            .is_some());
        let patches = PatchMatrix::from_vec(1, s, vec![32_767u32; s]);
        let got = ExactEngine.vdp_batch_prepared(&patches, &prepared, &[0]);
        assert_eq!(got[0], s as f64 * 32_767.0 * 32_767.0);
    }

    #[test]
    fn foreign_prepared_handle_falls_back_to_raw_weights() {
        // A handle prepared by some other engine (no ExactPrepared
        // payload) must still execute correctly on the raw matrix.
        let (patches, weights, keys) = test_tile(2, 3, 9);
        let wm = WeightMatrix::new(&weights, 3, 9);
        let foreign = PreparedWeights::raw("someone-else", &wm);
        assert_eq!(
            ExactEngine.vdp_batch_prepared(&patches, &foreign, &keys),
            ExactEngine.vdp_batch(&patches, &wm, &keys)
        );
    }

    #[test]
    fn combine_keys_separates_neighbours() {
        // Adjacent indices must land on unrelated keys, and the
        // combination must be order-sensitive.
        assert_ne!(combine_keys(0, 0), combine_keys(0, 1));
        assert_ne!(combine_keys(0, 1), combine_keys(1, 0));
        assert_ne!(combine_keys(1, 2), combine_keys(2, 1));
        assert_ne!(mix_key(41), mix_key(42));
    }

    #[test]
    #[should_panic(expected = "one noise key per patch")]
    fn batch_rejects_wrong_key_count() {
        let (patches, weights, _) = test_tile(2, 2, 3);
        let wm = WeightMatrix::new(&weights, 2, 3);
        let _ = ExactEngine.vdp_batch(&patches, &wm, &[0]);
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn batch_rejects_dimension_mismatch() {
        let (patches, _, keys) = test_tile(2, 2, 3);
        let weights = vec![1i32; 8];
        let wm = WeightMatrix::new(&weights, 2, 4);
        let _ = ExactEngine.vdp_batch(&patches, &wm, &keys);
    }

    #[test]
    fn zero_length_vectors_are_allowed() {
        let patches = PatchMatrix::zeros(2, 0);
        let weights: Vec<i32> = Vec::new();
        let wm = WeightMatrix::new(&weights, 3, 0);
        let out = ExactEngine.vdp_batch(&patches, &wm, &[0, 1]);
        assert_eq!(out, vec![0.0; 6]);
    }
}
