//! # sconna-tensor — CNN inference substrate
//!
//! The neural-network half of the SCONNA reproduction: dense tensors,
//! 8-bit integer quantization matching the paper's unsigned-input /
//! sign-magnitude-weight convention, convolution / pooling /
//! fully-connected layers that route every inner product through a
//! pluggable [`engine::VdpEngine`], layer-accurate workload tables for the
//! four evaluated CNNs (GoogleNet, ResNet50, MobileNet_V2,
//! ShuffleNet_V2), and a small CNN trained in-repo on a synthetic dataset
//! for the accuracy study.
//!
//! ```
//! use sconna_tensor::models::resnet50;
//!
//! // ResNet50's largest kernel vector is 3·3·512 = 4608 points — the
//! // number the paper's Section II-B quotes.
//! assert_eq!(resnet50().max_vector_len(), 4608);
//! ```

pub mod arena;
pub mod dataset;
pub mod decompose;
pub mod engine;
pub mod fp;
pub mod layers;
pub mod models;
pub mod network;
pub mod quant;
pub mod resnet_small;
pub mod smallcnn;
pub mod tensor;

pub use engine::{ExactEngine, VdpEngine};
pub use models::{CnnModel, VdpWorkload};
pub use network::{QLayer, QuantizedNetwork};
pub use tensor::Tensor;
