//! A small *residual* CNN — the deeper counterpart of
//! [`crate::smallcnn::SmallCnn`] in the accuracy study.
//!
//! The paper's Table V observes that larger CNNs (ResNet50, GoogleNet)
//! tolerate SCONNA's errors better than small ones (MobileNet_V2).
//! Reproducing that *trend* needs two trainable models of different
//! robustness; this one adds an identity-skip residual block, whose skip
//! path carries clean activations around the noisy branch — the
//! structural reason deeper residual nets degrade less under per-layer
//! compute noise.
//!
//! Topology: conv3×3(c) → ReLU → maxpool2 → [conv3×3(c) → ReLU →
//! conv3×3(c) → +skip → ReLU] → maxpool2 → FC. Int8 quantization follows
//! the standard residual discipline: the branch's second conv
//! requantizes to the skip's scale and the merge saturates.

use crate::dataset::Sample;
use crate::engine::VdpEngine;
use crate::fp;
use crate::layers::{residual_relu_add, MaxPool2d, QConv2d, QFc};
use crate::quant::{ActivationQuant, Requant, WeightQuant};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Architecture hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SmallResNetConfig {
    /// Input side length (divisible by 4).
    pub input_size: usize,
    /// Channel width throughout.
    pub channels: usize,
    /// Output classes.
    pub classes: usize,
}

impl Default for SmallResNetConfig {
    fn default() -> Self {
        Self {
            input_size: 16,
            channels: 12,
            classes: 10,
        }
    }
}

/// Float-precision residual model.
#[derive(Debug, Clone)]
pub struct SmallResNet {
    /// Architecture.
    pub cfg: SmallResNetConfig,
    w_stem: Tensor<f32>,
    b_stem: Vec<f32>,
    w1: Tensor<f32>,
    b1: Vec<f32>,
    w2: Tensor<f32>,
    b2: Vec<f32>,
    wf: Tensor<f32>,
    bf: Vec<f32>,
}

struct Caches {
    x: Tensor<f32>,
    z0: Tensor<f32>,
    a0: Tensor<f32>,
    p0: Tensor<f32>,
    arg0: Vec<usize>,
    z1: Tensor<f32>,
    a1: Tensor<f32>,
    r: Tensor<f32>,
    a2: Tensor<f32>,
    p2: Tensor<f32>,
    arg2: Vec<usize>,
    logits: Vec<f32>,
}

impl SmallResNet {
    /// He-initialized model.
    ///
    /// # Panics
    /// Panics if the input size is not divisible by 4.
    pub fn new(cfg: SmallResNetConfig, seed: u64) -> Self {
        assert!(
            cfg.input_size.is_multiple_of(4),
            "input size must be divisible by 4"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let init = |dims: &[usize], fan_in: usize, rng: &mut StdRng| {
            let s = (2.0 / fan_in as f32).sqrt();
            Tensor::from_fn(dims, |_| rng.gen_range(-s..s))
        };
        let c = cfg.channels;
        let fc_in = c * (cfg.input_size / 4) * (cfg.input_size / 4);
        Self {
            cfg,
            w_stem: init(&[c, 1, 3, 3], 9, &mut rng),
            b_stem: vec![0.0; c],
            w1: init(&[c, c, 3, 3], 9 * c, &mut rng),
            b1: vec![0.0; c],
            w2: init(&[c, c, 3, 3], 9 * c, &mut rng),
            b2: vec![0.0; c],
            wf: init(&[cfg.classes, fc_in], fc_in, &mut rng),
            bf: vec![0.0; cfg.classes],
        }
    }

    fn forward_cached(&self, x: &Tensor<f32>) -> Caches {
        let z0 = fp::conv_forward(x, &self.w_stem, &self.b_stem, 1);
        let a0 = fp::relu_forward(&z0);
        let (p0, arg0) = fp::maxpool2_forward(&a0);
        let z1 = fp::conv_forward(&p0, &self.w1, &self.b1, 1);
        let a1 = fp::relu_forward(&z1);
        let z2 = fp::conv_forward(&a1, &self.w2, &self.b2, 1);
        // Residual merge.
        let r = Tensor::from_fn(z2.dims(), |i| z2.as_slice()[i] + p0.as_slice()[i]);
        let a2 = fp::relu_forward(&r);
        let (p2, arg2) = fp::maxpool2_forward(&a2);
        let logits = fp::fc_forward(p2.as_slice(), &self.wf, &self.bf);
        Caches {
            x: x.clone(),
            z0,
            a0,
            p0,
            arg0,
            z1,
            a1,
            r,
            a2,
            p2,
            arg2,
            logits,
        }
    }

    /// Float logits.
    pub fn logits(&self, x: &Tensor<f32>) -> Vec<f32> {
        self.forward_cached(x).logits
    }

    /// Float Top-1 accuracy.
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let ok = samples
            .iter()
            .filter(|s| crate::layers::argmax(&self.logits(&s.image)) == s.label)
            .count();
        ok as f64 / samples.len() as f64
    }

    /// One SGD step; returns the loss.
    pub fn sgd_step(&mut self, sample: &Sample, lr: f32) -> f32 {
        let c = self.forward_cached(&sample.image);
        let (loss, grad_logits) = fp::softmax_cross_entropy(&c.logits, sample.label);

        let (gp2, gwf, gbf) = fp::fc_backward(c.p2.as_slice(), &self.wf, &grad_logits);
        let gp2 = Tensor::from_vec(c.p2.dims(), gp2);
        let ga2 = fp::maxpool2_backward(c.a2.dims(), &c.arg2, &gp2);
        let gr = fp::relu_backward(&c.r, &ga2);
        // The merge fans the gradient into the branch and the skip.
        let (ga1, gw2, gb2) = fp::conv_backward(&c.a1, &self.w2, &gr, 1);
        let gz1 = fp::relu_backward(&c.z1, &ga1);
        let (gp0_branch, gw1, gb1) = fp::conv_backward(&c.p0, &self.w1, &gz1, 1);
        let gp0 = Tensor::from_fn(gp0_branch.dims(), |i| {
            gp0_branch.as_slice()[i] + gr.as_slice()[i]
        });
        let ga0 = fp::maxpool2_backward(c.a0.dims(), &c.arg0, &gp0);
        let gz0 = fp::relu_backward(&c.z0, &ga0);
        let (_, gw_stem, gb_stem) = fp::conv_backward(&c.x, &self.w_stem, &gz0, 1);

        step(&mut self.w_stem, &gw_stem, lr);
        step_vec(&mut self.b_stem, &gb_stem, lr);
        step(&mut self.w1, &gw1, lr);
        step_vec(&mut self.b1, &gb1, lr);
        step(&mut self.w2, &gw2, lr);
        step_vec(&mut self.b2, &gb2, lr);
        step(&mut self.wf, &gwf, lr);
        step_vec(&mut self.bf, &gbf, lr);
        loss
    }

    /// Trains for `epochs` passes; returns the final-epoch mean loss.
    pub fn train(&mut self, samples: &[Sample], epochs: usize, lr: f32) -> f32 {
        assert!(!samples.is_empty(), "cannot train on an empty set");
        let mut last = 0.0;
        for _ in 0..epochs {
            last = samples.iter().map(|s| self.sgd_step(s, lr)).sum::<f32>() / samples.len() as f32;
        }
        last
    }

    /// Post-training quantization into the residual int8 model.
    ///
    /// # Panics
    /// Panics on an empty calibration set.
    pub fn quantize(&self, calibration: &[Sample], bits: u8) -> QuantizedSmallResNet {
        assert!(!calibration.is_empty(), "calibration set must be non-empty");
        let mut a0_max = 0f32;
        let mut a1_max = 0f32;
        let mut a2_max = 0f32;
        for s in calibration {
            let c = self.forward_cached(&s.image);
            a0_max = a0_max.max(c.a0.max_abs());
            a1_max = a1_max.max(c.a1.max_abs());
            a2_max = a2_max.max(c.a2.max_abs());
        }
        let input_q = ActivationQuant::fit(1.0, bits);
        let act0_q = ActivationQuant::fit(a0_max.max(1e-6), bits);
        let act1_q = ActivationQuant::fit(a1_max.max(1e-6), bits);
        // The merge output saturates into the skip scale; calibrating on
        // a2 keeps headroom for the sum.
        let act2_q = ActivationQuant::fit(a2_max.max(1e-6).max(a0_max), bits);
        let wq_stem = WeightQuant::fit(self.w_stem.max_abs().max(1e-6), bits);
        let wq1 = WeightQuant::fit(self.w1.max_abs().max(1e-6), bits);
        let wq2 = WeightQuant::fit(self.w2.max_abs().max(1e-6), bits);
        let wqf = WeightQuant::fit(self.wf.max_abs().max(1e-6), bits);

        let conv = |name: &str,
                    w: &Tensor<f32>,
                    b: &[f32],
                    wq: WeightQuant,
                    in_q: ActivationQuant,
                    out_q: ActivationQuant| QConv2d {
            name: name.into(),
            weights: wq.quantize_tensor(w),
            bias: b
                .iter()
                .map(|&v| (v / (in_q.scale * wq.scale)) as f64)
                .collect(),
            stride: 1,
            padding: 1,
            groups: 1,
            requant: Requant::new(in_q, wq, out_q),
        };

        QuantizedSmallResNet {
            input_quant: input_q,
            stem: conv("stem", &self.w_stem, &self.b_stem, wq_stem, input_q, act0_q),
            // Skip and branch meet at act2 scale: requantize p0 codes from
            // act0 to act2 via the scale ratio.
            skip_rescale: act0_q.scale / act2_q.scale,
            conv1: conv("block.conv1", &self.w1, &self.b1, wq1, act0_q, act1_q),
            conv2: conv("block.conv2", &self.w2, &self.b2, wq2, act1_q, act2_q),
            pool: MaxPool2d {
                kernel: 2,
                stride: 2,
                padding: 0,
            },
            fc: QFc {
                name: "fc".into(),
                weights: wqf.quantize_tensor(&self.wf),
                bias: self.bf.clone(),
                dequant: act2_q.scale * wqf.scale,
            },
            qmax: (1u32 << bits) - 1,
        }
    }
}

fn step(param: &mut Tensor<f32>, grad: &Tensor<f32>, lr: f32) {
    for (p, g) in param.as_mut_slice().iter_mut().zip(grad.as_slice()) {
        *p -= lr * g;
    }
}

fn step_vec(param: &mut [f32], grad: &[f32], lr: f32) {
    for (p, g) in param.iter_mut().zip(grad) {
        *p -= lr * g;
    }
}

/// The quantized residual model.
#[derive(Debug, Clone)]
pub struct QuantizedSmallResNet {
    /// Input quantizer.
    pub input_quant: ActivationQuant,
    /// Stem convolution.
    pub stem: QConv2d,
    /// Code-domain rescale applied to the skip before the merge
    /// (act0 scale → act2 scale).
    pub skip_rescale: f32,
    /// Residual branch convs.
    pub conv1: QConv2d,
    /// Second branch conv; requantizes (signed) to the merge scale.
    pub conv2: QConv2d,
    /// Shared 2×2 pool.
    pub pool: MaxPool2d,
    /// Classifier.
    pub fc: QFc,
    /// Activation code ceiling.
    pub qmax: u32,
}

impl QuantizedSmallResNet {
    /// Runs the quantized network on an engine and returns logits.
    pub fn forward(&self, image: &Tensor<f32>, engine: &dyn VdpEngine) -> Vec<f32> {
        let x = self.input_quant.quantize_tensor(image);
        let a0 = self.stem.forward(&x, engine);
        let p0 = self.pool.forward(&a0);
        let a1 = self.conv1.forward(&p0, engine);
        let pre = self.conv2.forward_preactivation(&a1, engine);
        // Rescale the skip into the merge scale.
        let skip = p0.map(|v| ((v as f32 * self.skip_rescale).round() as u32).min(self.qmax));
        let a2 = residual_relu_add(&pre, &skip, self.qmax);
        let p2 = self.pool.forward(&a2);
        let mut flat = p2;
        flat.reshape(&[flat.len()]);
        self.fc.forward_logits(&flat, engine)
    }

    /// Top-1 accuracy over a labelled set.
    pub fn accuracy(&self, samples: &[Sample], engine: &dyn VdpEngine) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let ok = samples
            .iter()
            .filter(|s| crate::layers::argmax(&self.forward(&s.image, engine)) == s.label)
            .count();
        ok as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;
    use crate::engine::ExactEngine;

    fn small_cfg() -> SmallResNetConfig {
        SmallResNetConfig {
            input_size: 12,
            channels: 8,
            classes: 6,
        }
    }

    #[test]
    fn training_learns_the_task() {
        let data = SyntheticDataset::new(6, 12, 0.2, 11);
        let train = data.batch(20, 1);
        let test = data.batch(8, 2);
        let mut net = SmallResNet::new(small_cfg(), 0);
        let first = net.train(&train, 1, 0.04);
        let last = net.train(&train, 9, 0.04);
        assert!(last < first, "loss must fall: {first} -> {last}");
        let acc = net.accuracy(&test);
        assert!(acc > 0.8, "residual net accuracy {acc}");
    }

    #[test]
    fn skip_gradient_reaches_the_stem() {
        // With the block weights zeroed, gradients still flow to the stem
        // through the identity skip (the whole point of the residual).
        let data = SyntheticDataset::new(6, 12, 0.2, 3);
        let train = data.batch(4, 1);
        let mut net = SmallResNet::new(small_cfg(), 0);
        net.w1 = Tensor::zeros(net.w1.dims());
        net.w2 = Tensor::zeros(net.w2.dims());
        let stem_before = net.w_stem.clone();
        net.sgd_step(&train[0], 0.05);
        let moved = net
            .w_stem
            .as_slice()
            .iter()
            .zip(stem_before.as_slice())
            .any(|(a, b)| a != b);
        assert!(moved, "stem weights must receive gradient through the skip");
    }

    #[test]
    fn quantized_matches_fp_accuracy() {
        let data = SyntheticDataset::new(6, 12, 0.2, 11);
        let train = data.batch(20, 1);
        let test = data.batch(8, 2);
        let mut net = SmallResNet::new(small_cfg(), 0);
        net.train(&train, 10, 0.04);
        let fp_acc = net.accuracy(&test);
        let q_acc = net.quantize(&train, 8).accuracy(&test, &ExactEngine);
        assert!(
            (fp_acc - q_acc).abs() <= 0.11,
            "fp {fp_acc} vs int8 {q_acc}"
        );
    }

    #[test]
    fn residual_merge_uses_the_skip() {
        // Zero branch weights: the quantized forward must reduce to
        // (rescaled) skip activations, not zeros.
        let data = SyntheticDataset::new(6, 12, 0.2, 11);
        let train = data.batch(10, 1);
        let mut net = SmallResNet::new(small_cfg(), 0);
        net.train(&train, 4, 0.04);
        let mut qnet = net.quantize(&train, 8);
        qnet.conv2.weights = Tensor::zeros(qnet.conv2.weights.dims());
        let logits = qnet.forward(&train[0].image, &ExactEngine);
        assert!(
            logits.iter().any(|&l| l.abs() > 1e-6),
            "skip path must carry signal when the branch is dead"
        );
    }
}
