//! Arena-reused scratch buffers for the batched inference hot path.
//!
//! At datacenter scale every serving batch used to pay a fresh round of
//! heap traffic: one im2col [`PatchMatrix`] + key vector per (row block,
//! layer) and one activation tensor per (image, layer). A [`BatchArena`]
//! recycles both — worker threads check scratch out of lock-free pools
//! and return it after the tile, so steady-state serving allocates only
//! on high-water-mark growth.
//!
//! Reuse is **observationally pure**: recycled buffers are re-zeroed to
//! exactly the state a fresh `zeros` allocation would have, and every
//! accumulator's noise key depends only on its (image, layer, group,
//! output position) coordinates — never on which buffer the patch
//! happened to land in — so arena-threaded forwards are bit-identical to
//! the allocating paths (property-tested in `tests/batch_parity.rs`).

use crate::engine::PatchMatrix;
use crate::tensor::Tensor;
use crossbeam::queue::SegQueue;

/// Per-tile im2col scratch: the stacked patch matrix and its parallel
/// per-patch noise-key vector, checked out of a [`BatchArena`] by one
/// worker for the duration of one row block.
#[derive(Default)]
pub struct ConvScratch {
    /// Stacked im2col patches (all images of the batch, image-major).
    pub patches: PatchMatrix,
    /// Per-patch noise keys, aligned with `patches` rows.
    pub keys: Vec<u64>,
}

impl ConvScratch {
    /// Re-shapes the scratch for a tile of `rows` patches of length
    /// `cols`, zero-filled — indistinguishable from freshly allocated
    /// buffers, but reusing the retained capacity.
    pub fn prepare(&mut self, rows: usize, cols: usize) {
        self.patches.reset(rows, cols);
        self.keys.clear();
        self.keys.resize(rows, 0);
    }
}

/// Lock-free pools of reusable inference buffers, shared by every worker
/// of a batched forward and across calls when threaded through
/// [`PreparedNetwork::forward_batch_in`](crate::network::PreparedNetwork::forward_batch_in)
/// (each serving instance owns one arena).
#[derive(Default)]
pub struct BatchArena {
    scratch: SegQueue<ConvScratch>,
    tensors: SegQueue<Vec<u32>>,
}

impl BatchArena {
    /// An empty arena; pools grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks an im2col scratch out of the pool (or grows the pool).
    pub fn scratch(&self) -> ConvScratch {
        self.scratch.pop().unwrap_or_default()
    }

    /// Returns an im2col scratch to the pool.
    pub fn release_scratch(&self, scratch: ConvScratch) {
        self.scratch.push(scratch);
    }

    /// A zero-filled activation tensor of `dims`, reusing pooled storage
    /// when available — same observable state as [`Tensor::zeros`].
    pub fn tensor(&self, dims: &[usize]) -> Tensor<u32> {
        let len = dims.iter().product();
        let mut data = self.tensors.pop().unwrap_or_default();
        data.clear();
        data.resize(len, 0);
        Tensor::from_vec(dims, data)
    }

    /// Recycles an activation tensor's storage into the pool.
    pub fn recycle(&self, tensor: Tensor<u32>) {
        self.tensors.push(tensor.into_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_tensor_is_indistinguishable_from_zeros() {
        let arena = BatchArena::new();
        let mut t = arena.tensor(&[2, 3]);
        t.as_mut_slice().copy_from_slice(&[1, 2, 3, 4, 5, 6]);
        arena.recycle(t);
        // Smaller, larger and equal shapes must all come back zeroed.
        for dims in [&[1, 2][..], &[4, 5][..], &[2, 3][..]] {
            let t = arena.tensor(dims);
            assert_eq!(t.dims(), dims);
            assert!(t.as_slice().iter().all(|&v| v == 0));
            arena.recycle(t);
        }
    }

    #[test]
    fn scratch_prepare_matches_fresh_buffers() {
        let arena = BatchArena::new();
        let mut s = arena.scratch();
        s.prepare(3, 4);
        s.patches.row_mut(1).copy_from_slice(&[9, 9, 9, 9]);
        s.keys[2] = 77;
        arena.release_scratch(s);
        let mut s = arena.scratch();
        s.prepare(5, 2);
        assert_eq!((s.patches.rows(), s.patches.cols()), (5, 2));
        assert!(s.patches.as_slice().iter().all(|&v| v == 0));
        assert_eq!(s.keys, vec![0; 5]);
    }

    #[test]
    fn pool_grows_under_concurrent_checkout() {
        let arena = BatchArena::new();
        let a = arena.scratch();
        let b = arena.scratch(); // pool empty: must grow, not block
        arena.release_scratch(a);
        arena.release_scratch(b);
    }
}
