//! Quantized network container: an ordered stack of quantized layers that
//! runs end-to-end on any [`VdpEngine`].
//!
//! [`QuantizedNetwork`] holds the weights; [`PreparedNetwork`] binds the
//! network to one engine and transforms every layer's weights into that
//! engine's weight-stationary [`crate::engine::PreparedWeights`] form
//! **once at model load**. All heavy entry points (accuracy evaluation,
//! serving instances) run through the prepared form; results are
//! bit-identical to the unprepared paths by the `vdp_batch_prepared`
//! contract.

use crate::arena::BatchArena;
use crate::engine::{combine_keys, PreparedWeights, VdpEngine};
use crate::layers::{GlobalAvgPool, MaxPool2d, QConv2d, QFc};
use crate::quant::ActivationQuant;
use crate::tensor::Tensor;
use sconna_sim::parallel::parallel_map_with;

/// One layer of a quantized network.
#[derive(Debug, Clone)]
pub enum QLayer {
    /// Quantized convolution (ReLU folded into requantization).
    Conv(QConv2d),
    /// Max pooling on codes.
    MaxPool(MaxPool2d),
    /// Global average pooling to a rank-1 tensor.
    GlobalAvgPool,
    /// Final classifier producing logits; must be last.
    Fc(QFc),
}

/// An integer-quantized CNN.
#[derive(Debug, Clone)]
pub struct QuantizedNetwork {
    /// Input image quantizer.
    pub input_quant: ActivationQuant,
    /// Layers in execution order; the last must be [`QLayer::Fc`].
    pub layers: Vec<QLayer>,
}

impl QuantizedNetwork {
    /// Runs a real-valued image through the network on the given engine
    /// and returns the class logits.
    ///
    /// # Panics
    /// Panics if the network does not end in an FC layer or an FC layer
    /// appears before the end.
    pub fn forward(&self, image: &Tensor<f32>, engine: &dyn VdpEngine) -> Vec<f32> {
        self.forward_keyed(image, engine, 0)
    }

    /// [`QuantizedNetwork::forward`] with an **image key** mixed into
    /// every layer's noise key: distinct keys give stochastic engines
    /// statistically independent noise per image, while the result stays
    /// a pure function of `(image, key)` — the property that lets
    /// accuracy evaluation parallelize over images without losing
    /// reproducibility.
    pub fn forward_keyed(
        &self,
        image: &Tensor<f32>,
        engine: &dyn VdpEngine,
        image_key: u64,
    ) -> Vec<f32> {
        let mut act: Tensor<u32> = self.input_quant.quantize_tensor(image);
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                QLayer::Conv(conv) => {
                    act = conv.forward_keyed(
                        &act,
                        engine,
                        combine_keys(image_key, conv.layer_key()),
                        1,
                    );
                }
                QLayer::MaxPool(pool) => act = pool.forward(&act),
                QLayer::GlobalAvgPool => act = GlobalAvgPool.forward(&act),
                QLayer::Fc(fc) => {
                    assert_eq!(i, last, "FC must be the final layer");
                    return fc.forward_logits_keyed(
                        &act,
                        engine,
                        combine_keys(image_key, fc.layer_key()),
                    );
                }
            }
        }
        panic!("network must end in an FC classifier");
    }

    /// Predicted class for an image.
    pub fn predict(&self, image: &Tensor<f32>, engine: &dyn VdpEngine) -> usize {
        crate::layers::argmax(&self.forward(image, engine))
    }

    /// Binds this network to `engine`, preparing every layer's weights
    /// into the engine's weight-stationary form once.
    pub fn prepare<'a>(&'a self, engine: &'a dyn VdpEngine) -> PreparedNetwork<'a> {
        PreparedNetwork::new(self, engine)
    }

    /// A low-weight-precision copy of this network — the **fallback
    /// model** an overloaded serving fleet degrades shed requests to
    /// (`accel::serve`'s `Degrade` admission policy): every weighted
    /// layer's codes are re-fit onto the symmetric `bits`-bit grid with
    /// the layer scales adjusted to match, so the represented real
    /// weights move by at most half a new quantization step while VDP
    /// streams shorten from `2^B_old` to `2^bits` symbols. Weight-free
    /// layers and the activation quantizers are shared unchanged.
    ///
    /// Requantizing to a precision the codes already fit is the identity,
    /// so `with_weight_bits` composes monotonically: degrading an already
    /// degraded network never sharpens it.
    ///
    /// # Panics
    /// Panics if `bits` is not in `2..=16`.
    pub fn with_weight_bits(&self, bits: u8) -> QuantizedNetwork {
        QuantizedNetwork {
            input_quant: self.input_quant,
            layers: self
                .layers
                .iter()
                .map(|layer| match layer {
                    QLayer::Conv(conv) => QLayer::Conv(conv.with_weight_bits(bits)),
                    QLayer::MaxPool(pool) => QLayer::MaxPool(*pool),
                    QLayer::GlobalAvgPool => QLayer::GlobalAvgPool,
                    QLayer::Fc(fc) => QLayer::Fc(fc.with_weight_bits(bits)),
                })
                .collect(),
        }
    }

    /// The **full low-precision fallback**: weights *and* activation
    /// codes re-fit onto `bits`-bit grids, every layer scale adjusted so
    /// the represented real values are preserved to the coarser grids'
    /// resolution. Unlike [`QuantizedNetwork::with_weight_bits`] (which
    /// touches only weights), the result is a genuine `bits`-bit network
    /// whose codes fit a `bits`-bit stochastic engine — run it on one
    /// (`Precision::new(bits)`) and the streams shorten `2^B / 2^bits`×
    /// while the range-matched ADC keeps the signal-to-noise ratio of the
    /// native operating point. This is the fallback model
    /// `accel::serve`'s `Degrade` admission policy executes shed
    /// requests on.
    ///
    /// Activation quantizers already at or below `bits` are left
    /// untouched, so degrading is monotone here too.
    ///
    /// # Panics
    /// Panics if `bits` is not in `2..=16`.
    pub fn degraded(&self, bits: u8) -> QuantizedNetwork {
        assert!(
            (2..=16).contains(&bits),
            "degraded precision must be in 2..=16, got {bits}"
        );
        // Ratio the activation scale grows by when re-fitting an
        // `old`-bit range onto the `bits`-bit grid (1 when it already
        // fits).
        let act_ratio = |old: u8| -> f64 {
            if bits >= old {
                1.0
            } else {
                (((1u32 << old) - 1) as f64) / (((1u32 << bits) - 1) as f64)
            }
        };
        let degrade_act = |q: ActivationQuant| -> ActivationQuant {
            if bits >= q.bits {
                q
            } else {
                ActivationQuant {
                    scale: (q.scale as f64 * act_ratio(q.bits)) as f32,
                    bits,
                }
            }
        };
        // Walk the layers tracking the incoming activation precision:
        // each conv's requantizer couples its input scale, weight scale
        // and output scale, and all three move.
        let mut in_ratio = act_ratio(self.input_quant.bits);
        let layers = self
            .layers
            .iter()
            .map(|layer| match layer {
                QLayer::Conv(conv) => {
                    let narrowed = conv.with_weight_bits(bits);
                    let w_ratio =
                        narrowed.requant.multiplier as f64 / conv.requant.multiplier as f64;
                    let out_ratio = act_ratio(conv.requant.bits);
                    let next = QConv2d {
                        // Accumulator units shrink by the input and
                        // weight re-scaling; the output grid supplies
                        // the new requantization target.
                        bias: narrowed.bias.iter().map(|b| b / in_ratio).collect(),
                        requant: crate::quant::Requant {
                            multiplier: (conv.requant.multiplier as f64 * in_ratio * w_ratio
                                / out_ratio) as f32,
                            bits: bits.min(conv.requant.bits),
                        },
                        ..narrowed
                    };
                    in_ratio = out_ratio;
                    QLayer::Conv(next)
                }
                QLayer::MaxPool(pool) => QLayer::MaxPool(*pool),
                QLayer::GlobalAvgPool => QLayer::GlobalAvgPool,
                QLayer::Fc(fc) => {
                    let narrowed = fc.with_weight_bits(bits);
                    let w_ratio = narrowed.dequant as f64 / fc.dequant as f64;
                    QLayer::Fc(QFc {
                        dequant: (fc.dequant as f64 * in_ratio * w_ratio) as f32,
                        ..narrowed
                    })
                }
            })
            .collect();
        QuantizedNetwork {
            input_quant: degrade_act(self.input_quant),
            layers,
        }
    }

    /// Top-1 and Top-k accuracy in one forward pass per sample,
    /// parallelized over images. Sample `i` runs under image key `i`, so
    /// the result is worker-count invariant and reproducible. Weights are
    /// prepared once for the whole evaluation (weight-stationary), which
    /// cannot change the result — only the wall time.
    pub fn evaluate(
        &self,
        samples: &[crate::dataset::Sample],
        k: usize,
        engine: &dyn VdpEngine,
        workers: usize,
    ) -> (f64, f64) {
        self.prepare(engine).evaluate(samples, k, workers)
    }

    /// Top-1 accuracy over a labelled set.
    pub fn accuracy(&self, samples: &[crate::dataset::Sample], engine: &dyn VdpEngine) -> f64 {
        self.evaluate(samples, 1, engine, 1).0
    }

    /// Top-k accuracy over a labelled set.
    pub fn top_k_accuracy(
        &self,
        samples: &[crate::dataset::Sample],
        k: usize,
        engine: &dyn VdpEngine,
    ) -> f64 {
        self.evaluate(samples, k, engine, 1).1
    }
}

/// Per-layer prepared weight handles, aligned with
/// [`QuantizedNetwork::layers`].
enum PreparedLayer {
    /// Convolution: one handle per channel group.
    Conv(Vec<PreparedWeights>),
    /// Weight-free layer (pooling): nothing to prepare.
    Direct,
    /// Classifier head: one handle.
    Fc(PreparedWeights),
}

/// A [`QuantizedNetwork`] bound to one engine, with every layer's weights
/// transformed into the engine's weight-stationary
/// [`PreparedWeights`] form at construction — the in-simulator mirror of
/// loading a model onto an accelerator instance: DKV/LUT conversion and
/// narrow-form derivation happen once, then every request reuses them.
///
/// All forwards are bit-identical to the unprepared
/// [`QuantizedNetwork`] paths under the same keys (the
/// `vdp_batch_prepared` contract), so preparation is purely a wall-time
/// optimization — property-tested in `tests/batch_parity.rs`.
///
/// ```
/// use sconna_tensor::engine::ExactEngine;
/// # use sconna_tensor::network::{QLayer, QuantizedNetwork};
/// # use sconna_tensor::layers::QFc;
/// # use sconna_tensor::quant::ActivationQuant;
/// # use sconna_tensor::Tensor;
/// # let net = QuantizedNetwork {
/// #     input_quant: ActivationQuant { scale: 1.0 / 255.0, bits: 8 },
/// #     layers: vec![QLayer::GlobalAvgPool, QLayer::Fc(QFc {
/// #         name: "fc".into(),
/// #         weights: Tensor::from_vec(&[2, 1], vec![127, -127]),
/// #         bias: vec![0.0, 0.0],
/// #         dequant: 1.0,
/// #     })],
/// # };
/// let engine = ExactEngine;
/// let prepared = net.prepare(&engine);            // once, at model load
/// let image = Tensor::from_fn(&[1, 4, 4], |_| 0.5);
/// let logits = prepared.forward_keyed(&image, 7); // per request
/// assert_eq!(logits, net.forward_keyed(&image, &engine, 7));
/// ```
pub struct PreparedNetwork<'a> {
    net: &'a QuantizedNetwork,
    engine: &'a dyn VdpEngine,
    layers: Vec<PreparedLayer>,
}

impl<'a> PreparedNetwork<'a> {
    /// Prepares every layer of `net` for `engine`.
    pub fn new(net: &'a QuantizedNetwork, engine: &'a dyn VdpEngine) -> Self {
        let layers = net
            .layers
            .iter()
            .map(|layer| match layer {
                QLayer::Conv(conv) => PreparedLayer::Conv(conv.prepare(engine)),
                QLayer::MaxPool(_) | QLayer::GlobalAvgPool => PreparedLayer::Direct,
                QLayer::Fc(fc) => PreparedLayer::Fc(fc.prepare(engine)),
            })
            .collect();
        Self {
            net,
            engine,
            layers,
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &QuantizedNetwork {
        self.net
    }

    /// The engine the weights were prepared for.
    pub fn engine(&self) -> &dyn VdpEngine {
        self.engine
    }

    /// [`QuantizedNetwork::forward_keyed`] through the prepared handles —
    /// bit-identical logits, no per-call weight derivation.
    pub fn forward_keyed(&self, image: &Tensor<f32>, image_key: u64) -> Vec<f32> {
        self.forward_batch(&[image], &[image_key], 1)
            .pop()
            .expect("invariant: forward_batch yields one logit row per image")
    }

    /// Runs a whole serving batch through the network with **stacked
    /// tiles**: at every multiplying layer, the im2col patches (or
    /// feature vectors) of all images share one batched-VDP tile, so each
    /// layer's prepared weights are fetched once per row block for the
    /// entire batch. Image `b` runs under `image_keys[b]`; the result is
    /// bit-identical to per-image [`PreparedNetwork::forward_keyed`]
    /// calls for any batch composition and any `workers` count.
    ///
    /// # Panics
    /// Panics if `image_keys` is not one key per image, the images
    /// disagree in shape, or the network does not end in its FC layer.
    pub fn forward_batch(
        &self,
        images: &[&Tensor<f32>],
        image_keys: &[u64],
        workers: usize,
    ) -> Vec<Vec<f32>> {
        // A call-local arena still amortizes buffers across the layer
        // walk and row blocks; long-lived callers (serving instances)
        // thread their own through `forward_batch_in` for cross-call
        // reuse.
        self.forward_batch_in(images, image_keys, workers, &BatchArena::new())
    }

    /// [`PreparedNetwork::forward_batch`] drawing every im2col scratch
    /// tile and activation tensor from `arena`, with each layer's inputs
    /// recycled as soon as the layer completes. Bit-identical to the
    /// allocating path (recycled buffers are re-zeroed; noise keys are
    /// pure coordinate functions — property-tested in
    /// `tests/batch_parity.rs`): in steady state a serving instance runs
    /// whole batches without touching the allocator.
    pub fn forward_batch_in(
        &self,
        images: &[&Tensor<f32>],
        image_keys: &[u64],
        workers: usize,
        arena: &BatchArena,
    ) -> Vec<Vec<f32>> {
        assert_eq!(image_keys.len(), images.len(), "one image key per image");
        if images.is_empty() {
            return Vec::new();
        }
        let mut acts: Vec<Tensor<u32>> = images
            .iter()
            .map(|im| self.net.input_quant.quantize_tensor(im))
            .collect();
        // Replaces the current activations and recycles the old set into
        // the arena for the next layer to draw on.
        let swap = |acts: &mut Vec<Tensor<u32>>, next: Vec<Tensor<u32>>| {
            for old in std::mem::replace(acts, next) {
                arena.recycle(old);
            }
        };
        let last = self.net.layers.len() - 1;
        for (i, (layer, prep)) in self.net.layers.iter().zip(&self.layers).enumerate() {
            match (layer, prep) {
                (QLayer::Conv(conv), PreparedLayer::Conv(handles)) => {
                    let base_keys: Vec<u64> = image_keys
                        .iter()
                        .map(|&k| combine_keys(k, conv.layer_key()))
                        .collect();
                    let refs: Vec<&Tensor<u32>> = acts.iter().collect();
                    let next = conv.forward_batch_keyed_in(
                        &refs,
                        self.engine,
                        Some(handles),
                        &base_keys,
                        workers,
                        arena,
                    );
                    swap(&mut acts, next);
                }
                (QLayer::MaxPool(pool), _) => {
                    let next = acts.iter().map(|a| pool.forward(a)).collect();
                    swap(&mut acts, next);
                }
                (QLayer::GlobalAvgPool, _) => {
                    let next = acts.iter().map(|a| GlobalAvgPool.forward(a)).collect();
                    swap(&mut acts, next);
                }
                (QLayer::Fc(fc), PreparedLayer::Fc(handle)) => {
                    assert_eq!(i, last, "FC must be the final layer");
                    let base_keys: Vec<u64> = image_keys
                        .iter()
                        .map(|&k| combine_keys(k, fc.layer_key()))
                        .collect();
                    let refs: Vec<&Tensor<u32>> = acts.iter().collect();
                    let logits = fc.forward_logits_batch_keyed_in(
                        &refs,
                        self.engine,
                        Some(handle),
                        &base_keys,
                        arena,
                    );
                    swap(&mut acts, Vec::new());
                    return logits;
                }
                _ => unreachable!("prepared layers are aligned by construction"),
            }
        }
        panic!("network must end in an FC classifier");
    }

    /// Predicted classes for a whole batch (argmax of
    /// [`PreparedNetwork::forward_batch`]).
    pub fn predict_batch(
        &self,
        images: &[&Tensor<f32>],
        image_keys: &[u64],
        workers: usize,
    ) -> Vec<usize> {
        self.predict_batch_in(images, image_keys, workers, &BatchArena::new())
    }

    /// [`PreparedNetwork::predict_batch`] drawing its scratch from
    /// `arena` ([`PreparedNetwork::forward_batch_in`]) — the steady-state
    /// call of a long-lived serving instance.
    pub fn predict_batch_in(
        &self,
        images: &[&Tensor<f32>],
        image_keys: &[u64],
        workers: usize,
        arena: &BatchArena,
    ) -> Vec<usize> {
        self.forward_batch_in(images, image_keys, workers, arena)
            .iter()
            .map(|logits| crate::layers::argmax(logits))
            .collect()
    }

    /// Top-1 and Top-k accuracy, parallelized over images (sample `i`
    /// runs under image key `i` — worker-count invariant).
    pub fn evaluate(
        &self,
        samples: &[crate::dataset::Sample],
        k: usize,
        workers: usize,
    ) -> (f64, f64) {
        if samples.is_empty() {
            return (0.0, 0.0);
        }
        let hits = parallel_map_with((0..samples.len()).collect(), workers, |i: usize| {
            let s = &samples[i];
            let logits = self.forward_keyed(&s.image, i as u64);
            let top1 = crate::layers::argmax(&logits) == s.label;
            let topk = crate::layers::top_k(&logits, k).contains(&s.label);
            (top1, topk)
        });
        let n = samples.len() as f64;
        let top1 = hits.iter().filter(|h| h.0).count() as f64 / n;
        let topk = hits.iter().filter(|h| h.1).count() as f64 / n;
        (top1, topk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::quant::{Requant, WeightQuant};

    fn tiny_network() -> QuantizedNetwork {
        let aq = ActivationQuant {
            scale: 1.0 / 255.0,
            bits: 8,
        };
        let wq = WeightQuant {
            scale: 1.0 / 127.0,
            bits: 8,
        };
        QuantizedNetwork {
            input_quant: aq,
            layers: vec![
                QLayer::Conv(QConv2d {
                    name: "c1".into(),
                    weights: Tensor::from_vec(&[2, 1, 1, 1], vec![127, -127]),
                    bias: vec![0.0, 0.0],
                    stride: 1,
                    padding: 0,
                    groups: 1,
                    requant: Requant::new(aq, wq, aq),
                }),
                QLayer::MaxPool(MaxPool2d {
                    kernel: 2,
                    stride: 2,
                    padding: 0,
                }),
                QLayer::GlobalAvgPool,
                QLayer::Fc(QFc {
                    name: "fc".into(),
                    weights: Tensor::from_vec(&[2, 2], vec![127, 0, 0, 127]),
                    bias: vec![0.0, 0.0],
                    dequant: aq.scale * wq.scale,
                }),
            ],
        }
    }

    #[test]
    fn forward_produces_logits() {
        let net = tiny_network();
        let image = Tensor::from_fn(&[1, 4, 4], |i| i as f32 / 16.0);
        let logits = net.forward(&image, &ExactEngine);
        assert_eq!(logits.len(), 2);
        // Channel 0 passes the (bright) image through, channel 1 is its
        // negation ReLU'd to zero → logit 0 must dominate.
        assert!(logits[0] > logits[1]);
        assert_eq!(net.predict(&image, &ExactEngine), 0);
    }

    #[test]
    fn accuracy_on_trivial_set() {
        use crate::dataset::Sample;
        let net = tiny_network();
        let bright = Sample {
            image: Tensor::from_fn(&[1, 4, 4], |_| 0.9),
            label: 0,
        };
        let acc = net.accuracy(std::slice::from_ref(&bright), &ExactEngine);
        assert_eq!(acc, 1.0);
        let top2 = net.top_k_accuracy(&[bright], 2, &ExactEngine);
        assert_eq!(top2, 1.0);
    }

    #[test]
    fn empty_sample_set_is_zero_accuracy() {
        let net = tiny_network();
        assert_eq!(net.accuracy(&[], &ExactEngine), 0.0);
        assert_eq!(net.evaluate(&[], 2, &ExactEngine, 4), (0.0, 0.0));
    }

    #[test]
    fn prepared_forward_matches_unprepared() {
        let net = tiny_network();
        let prepared = net.prepare(&ExactEngine);
        for key in [0u64, 7, 9999] {
            let image = Tensor::from_fn(&[1, 4, 4], |i| ((i as u64 * 13 + key) % 16) as f32 / 16.0);
            assert_eq!(
                prepared.forward_keyed(&image, key),
                net.forward_keyed(&image, &ExactEngine, key)
            );
        }
    }

    #[test]
    fn batch_forward_matches_per_image_forwards() {
        // Stacked whole-batch tiles must be bit-identical to running the
        // images one by one, for any worker count.
        let net = tiny_network();
        let prepared = net.prepare(&ExactEngine);
        let images: Vec<Tensor<f32>> = (0..5)
            .map(|b| Tensor::from_fn(&[1, 4, 4], |i| ((b * 7 + i) % 16) as f32 / 16.0))
            .collect();
        let refs: Vec<&Tensor<f32>> = images.iter().collect();
        let keys: Vec<u64> = (0..5u64).map(|b| b * 1000 + 3).collect();
        let singles: Vec<Vec<f32>> = refs
            .iter()
            .zip(&keys)
            .map(|(im, &k)| prepared.forward_keyed(im, k))
            .collect();
        for workers in [1usize, 2, 8] {
            assert_eq!(
                prepared.forward_batch(&refs, &keys, workers),
                singles,
                "{workers} workers"
            );
        }
        // Predictions come straight off the batch logits.
        let preds = prepared.predict_batch(&refs, &keys, 2);
        assert_eq!(preds.len(), 5);
        assert_eq!(prepared.forward_batch(&[], &[], 1), Vec::<Vec<f32>>::new());
    }

    #[test]
    fn with_weight_bits_at_native_precision_is_identity() {
        // The tiny network's codes already span the 8-bit grid exactly,
        // so requantizing to 8 bits must not move a code or a scale.
        let net = tiny_network();
        let same = net.with_weight_bits(8);
        let (QLayer::Conv(a), QLayer::Conv(b)) = (&net.layers[0], &same.layers[0]) else {
            panic!("conv first");
        };
        assert_eq!(a.weights.as_slice(), b.weights.as_slice());
        assert_eq!(a.requant.multiplier, b.requant.multiplier);
        let (QLayer::Fc(fa), QLayer::Fc(fb)) = (&net.layers[3], &same.layers[3]) else {
            panic!("fc last");
        };
        assert_eq!(fa.weights.as_slice(), fb.weights.as_slice());
        assert_eq!(fa.dequant, fb.dequant);
    }

    #[test]
    fn with_weight_bits_preserves_represented_weights_within_half_step() {
        let net = tiny_network();
        for bits in [2u8, 4, 6] {
            let degraded = net.with_weight_bits(bits);
            let qmax = (1i32 << (bits - 1)) - 1;
            let (QLayer::Conv(orig), QLayer::Conv(deg)) = (&net.layers[0], &degraded.layers[0])
            else {
                panic!("conv first");
            };
            let ratio = deg.requant.multiplier as f64 / orig.requant.multiplier as f64;
            for (&o, &d) in orig.weights.as_slice().iter().zip(deg.weights.as_slice()) {
                assert!(d.abs() <= qmax, "{bits}-bit code {d} out of range");
                // Real weight o·s vs d·(s·ratio): within half a new step.
                assert!(
                    (o as f64 - d as f64 * ratio).abs() <= ratio / 2.0 + 1e-9,
                    "bits {bits}: code {o} -> {d} (ratio {ratio})"
                );
            }
        }
    }

    #[test]
    fn degraded_network_still_classifies_the_trivial_set() {
        // 4-bit weights coarsen the filters but the bright-image argmax
        // survives — the accuracy-for-availability trade the serving
        // fleet's Degrade policy exploits.
        let net = tiny_network().with_weight_bits(4);
        let image = Tensor::from_fn(&[1, 4, 4], |_| 0.9);
        assert_eq!(net.predict(&image, &ExactEngine), 0);
        // Degrading a degraded network never sharpens it back.
        let twice = net.with_weight_bits(4);
        let (QLayer::Fc(a), QLayer::Fc(b)) = (&net.layers[3], &twice.layers[3]) else {
            panic!("fc last");
        };
        assert_eq!(a.weights.as_slice(), b.weights.as_slice());
        assert_eq!(a.dequant, b.dequant);
    }

    #[test]
    fn degraded_network_codes_fit_the_target_grid_and_track_the_original() {
        let net = tiny_network();
        let image = Tensor::from_fn(&[1, 4, 4], |i| i as f32 / 16.0);
        let reference = net.forward(&image, &ExactEngine);
        for bits in [4u8, 5, 6] {
            let deg = net.degraded(bits);
            // Input codes fit the grid.
            assert_eq!(deg.input_quant.bits, bits);
            let (QLayer::Conv(c), QLayer::Fc(f)) = (&deg.layers[0], &deg.layers[3]) else {
                panic!("conv first, fc last");
            };
            let wqmax = (1i32 << (bits - 1)) - 1;
            assert!(c.weights.as_slice().iter().all(|w| w.abs() <= wqmax));
            assert!(f.weights.as_slice().iter().all(|w| w.abs() <= wqmax));
            assert_eq!(c.requant.bits, bits);
            // Logits track the full-precision forward to grid resolution
            // (the tiny net's logits are O(0.1); a few new-grid steps).
            let logits = deg.forward(&image, &ExactEngine);
            for (a, b) in logits.iter().zip(&reference) {
                assert!(
                    (a - b).abs() < 0.15,
                    "bits {bits}: logits {logits:?} vs {reference:?}"
                );
            }
            // The bright image still classifies.
            let bright = Tensor::from_fn(&[1, 4, 4], |_| 0.9);
            assert_eq!(deg.predict(&bright, &ExactEngine), 0);
            // Degrading is idempotent at the same precision.
            let twice = deg.degraded(bits);
            let QLayer::Conv(c2) = &twice.layers[0] else {
                panic!("conv")
            };
            assert_eq!(c.weights.as_slice(), c2.weights.as_slice());
            assert_eq!(c.requant.multiplier, c2.requant.multiplier);
        }
        // At-or-above-native precision is the identity.
        let same = net.degraded(8);
        assert_eq!(same.input_quant.bits, 8);
        assert_eq!(
            format!("{:?}", same.layers[0]),
            format!("{:?}", net.layers[0])
        );
    }

    #[test]
    fn evaluate_is_worker_count_invariant() {
        use crate::dataset::Sample;
        let net = tiny_network();
        let samples: Vec<Sample> = (0..7)
            .map(|i| Sample {
                image: Tensor::from_fn(&[1, 4, 4], |j| ((i * 5 + j) % 16) as f32 / 16.0),
                label: i % 2,
            })
            .collect();
        let baseline = net.evaluate(&samples, 2, &ExactEngine, 1);
        for workers in [2usize, 4, 8] {
            assert_eq!(net.evaluate(&samples, 2, &ExactEngine, workers), baseline);
        }
    }
}
