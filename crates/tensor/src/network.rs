//! Quantized network container: an ordered stack of quantized layers that
//! runs end-to-end on any [`VdpEngine`].

use crate::engine::{combine_keys, VdpEngine};
use crate::layers::{GlobalAvgPool, MaxPool2d, QConv2d, QFc};
use crate::quant::ActivationQuant;
use crate::tensor::Tensor;
use sconna_sim::parallel::parallel_map_with;

/// One layer of a quantized network.
#[derive(Debug, Clone)]
pub enum QLayer {
    /// Quantized convolution (ReLU folded into requantization).
    Conv(QConv2d),
    /// Max pooling on codes.
    MaxPool(MaxPool2d),
    /// Global average pooling to a rank-1 tensor.
    GlobalAvgPool,
    /// Final classifier producing logits; must be last.
    Fc(QFc),
}

/// An integer-quantized CNN.
#[derive(Debug, Clone)]
pub struct QuantizedNetwork {
    /// Input image quantizer.
    pub input_quant: ActivationQuant,
    /// Layers in execution order; the last must be [`QLayer::Fc`].
    pub layers: Vec<QLayer>,
}

impl QuantizedNetwork {
    /// Runs a real-valued image through the network on the given engine
    /// and returns the class logits.
    ///
    /// # Panics
    /// Panics if the network does not end in an FC layer or an FC layer
    /// appears before the end.
    pub fn forward(&self, image: &Tensor<f32>, engine: &dyn VdpEngine) -> Vec<f32> {
        self.forward_keyed(image, engine, 0)
    }

    /// [`QuantizedNetwork::forward`] with an **image key** mixed into
    /// every layer's noise key: distinct keys give stochastic engines
    /// statistically independent noise per image, while the result stays
    /// a pure function of `(image, key)` — the property that lets
    /// accuracy evaluation parallelize over images without losing
    /// reproducibility.
    pub fn forward_keyed(
        &self,
        image: &Tensor<f32>,
        engine: &dyn VdpEngine,
        image_key: u64,
    ) -> Vec<f32> {
        let mut act: Tensor<u32> = self.input_quant.quantize_tensor(image);
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                QLayer::Conv(conv) => {
                    act = conv.forward_keyed(
                        &act,
                        engine,
                        combine_keys(image_key, conv.layer_key()),
                        1,
                    )
                }
                QLayer::MaxPool(pool) => act = pool.forward(&act),
                QLayer::GlobalAvgPool => act = GlobalAvgPool.forward(&act),
                QLayer::Fc(fc) => {
                    assert_eq!(i, last, "FC must be the final layer");
                    return fc.forward_logits_keyed(
                        &act,
                        engine,
                        combine_keys(image_key, fc.layer_key()),
                    );
                }
            }
        }
        panic!("network must end in an FC classifier");
    }

    /// Predicted class for an image.
    pub fn predict(&self, image: &Tensor<f32>, engine: &dyn VdpEngine) -> usize {
        crate::layers::argmax(&self.forward(image, engine))
    }

    /// Top-1 and Top-k accuracy in one forward pass per sample,
    /// parallelized over images. Sample `i` runs under image key `i`, so
    /// the result is worker-count invariant and reproducible.
    pub fn evaluate(
        &self,
        samples: &[crate::dataset::Sample],
        k: usize,
        engine: &dyn VdpEngine,
        workers: usize,
    ) -> (f64, f64) {
        if samples.is_empty() {
            return (0.0, 0.0);
        }
        let hits = parallel_map_with((0..samples.len()).collect(), workers, |i: usize| {
            let s = &samples[i];
            let logits = self.forward_keyed(&s.image, engine, i as u64);
            let top1 = crate::layers::argmax(&logits) == s.label;
            let topk = crate::layers::top_k(&logits, k).contains(&s.label);
            (top1, topk)
        });
        let n = samples.len() as f64;
        let top1 = hits.iter().filter(|h| h.0).count() as f64 / n;
        let topk = hits.iter().filter(|h| h.1).count() as f64 / n;
        (top1, topk)
    }

    /// Top-1 accuracy over a labelled set.
    pub fn accuracy(
        &self,
        samples: &[crate::dataset::Sample],
        engine: &dyn VdpEngine,
    ) -> f64 {
        self.evaluate(samples, 1, engine, 1).0
    }

    /// Top-k accuracy over a labelled set.
    pub fn top_k_accuracy(
        &self,
        samples: &[crate::dataset::Sample],
        k: usize,
        engine: &dyn VdpEngine,
    ) -> f64 {
        self.evaluate(samples, k, engine, 1).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::quant::{Requant, WeightQuant};

    fn tiny_network() -> QuantizedNetwork {
        let aq = ActivationQuant { scale: 1.0 / 255.0, bits: 8 };
        let wq = WeightQuant { scale: 1.0 / 127.0, bits: 8 };
        QuantizedNetwork {
            input_quant: aq,
            layers: vec![
                QLayer::Conv(QConv2d {
                    name: "c1".into(),
                    weights: Tensor::from_vec(&[2, 1, 1, 1], vec![127, -127]),
                    bias: vec![0.0, 0.0],
                    stride: 1,
                    padding: 0,
                    groups: 1,
                    requant: Requant::new(aq, wq, aq),
                }),
                QLayer::MaxPool(MaxPool2d { kernel: 2, stride: 2, padding: 0 }),
                QLayer::GlobalAvgPool,
                QLayer::Fc(QFc {
                    name: "fc".into(),
                    weights: Tensor::from_vec(&[2, 2], vec![127, 0, 0, 127]),
                    bias: vec![0.0, 0.0],
                    dequant: aq.scale * wq.scale,
                }),
            ],
        }
    }

    #[test]
    fn forward_produces_logits() {
        let net = tiny_network();
        let image = Tensor::from_fn(&[1, 4, 4], |i| i as f32 / 16.0);
        let logits = net.forward(&image, &ExactEngine);
        assert_eq!(logits.len(), 2);
        // Channel 0 passes the (bright) image through, channel 1 is its
        // negation ReLU'd to zero → logit 0 must dominate.
        assert!(logits[0] > logits[1]);
        assert_eq!(net.predict(&image, &ExactEngine), 0);
    }

    #[test]
    fn accuracy_on_trivial_set() {
        use crate::dataset::Sample;
        let net = tiny_network();
        let bright = Sample {
            image: Tensor::from_fn(&[1, 4, 4], |_| 0.9),
            label: 0,
        };
        let acc = net.accuracy(std::slice::from_ref(&bright), &ExactEngine);
        assert_eq!(acc, 1.0);
        let top2 = net.top_k_accuracy(&[bright], 2, &ExactEngine);
        assert_eq!(top2, 1.0);
    }

    #[test]
    fn empty_sample_set_is_zero_accuracy() {
        let net = tiny_network();
        assert_eq!(net.accuracy(&[], &ExactEngine), 0.0);
        assert_eq!(net.evaluate(&[], 2, &ExactEngine, 4), (0.0, 0.0));
    }

    #[test]
    fn evaluate_is_worker_count_invariant() {
        use crate::dataset::Sample;
        let net = tiny_network();
        let samples: Vec<Sample> = (0..7)
            .map(|i| Sample {
                image: Tensor::from_fn(&[1, 4, 4], |j| ((i * 5 + j) % 16) as f32 / 16.0),
                label: i % 2,
            })
            .collect();
        let baseline = net.evaluate(&samples, 2, &ExactEngine, 1);
        for workers in [2usize, 4, 8] {
            assert_eq!(net.evaluate(&samples, 2, &ExactEngine, workers), baseline);
        }
    }
}
