//! Workload descriptions of the four CNNs the paper evaluates
//! (Section VI-B): GoogleNet, ResNet50, MobileNet_V2 and ShuffleNet_V2.
//!
//! Each architecture is transcribed layer by layer from its original
//! paper at the 224×224×3 ImageNet input size. What the accelerator
//! simulation needs from a network is, per multiplying layer, the VDP
//! geometry: the flattened vector length `S = K·K·D/groups`, the number
//! of kernel vectors `L`, and how many VDP operations each kernel
//! performs (`H_out · W_out`). Residual adds, concatenations and channel
//! shuffles move no multiplies, so they appear only through their effect
//! on downstream channel counts.

use serde::{Deserialize, Serialize};

/// One multiplying layer's VDP geometry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VdpWorkload {
    /// Layer name (unique within a model).
    pub layer: String,
    /// Flattened vector length `S = K·K·D/groups`.
    pub vector_len: usize,
    /// Number of kernel vectors `L`.
    pub kernels: usize,
    /// VDP operations per kernel (`H_out · W_out`; 1 for FC rows).
    pub ops_per_kernel: usize,
}

impl VdpWorkload {
    /// Total VDP operations of this layer.
    pub fn vdp_ops(&self) -> usize {
        self.kernels * self.ops_per_kernel
    }

    /// Total scalar multiply-accumulates.
    pub fn macs(&self) -> usize {
        self.vdp_ops() * self.vector_len
    }

    /// The workload of `batch` images of this layer processed
    /// back-to-back under a weight-stationary mapping: the kernel set and
    /// vector geometry are unchanged, each kernel just slides over `batch`
    /// feature maps instead of one.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn batched(&self, batch: usize) -> VdpWorkload {
        assert!(batch > 0, "batch must be positive");
        VdpWorkload {
            layer: self.layer.clone(),
            vector_len: self.vector_len,
            kernels: self.kernels,
            ops_per_kernel: self.ops_per_kernel * batch,
        }
    }
}

/// A CNN as the accelerators see it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CnnModel {
    /// Model name.
    pub name: String,
    /// Multiplying layers in execution order.
    pub workloads: Vec<VdpWorkload>,
}

impl CnnModel {
    /// Total VDP operations per inference.
    pub fn total_vdp_ops(&self) -> usize {
        self.workloads.iter().map(VdpWorkload::vdp_ops).sum()
    }

    /// Total multiply-accumulates per inference.
    pub fn total_macs(&self) -> usize {
        self.workloads.iter().map(VdpWorkload::macs).sum()
    }

    /// Largest VDP vector length in the model.
    pub fn max_vector_len(&self) -> usize {
        self.workloads
            .iter()
            .map(|w| w.vector_len)
            .max()
            .unwrap_or(0)
    }

    /// Kernel census against a size threshold: `(at_or_below, above)` —
    /// the Table II buckets (threshold 44).
    pub fn kernel_census(&self, threshold: usize) -> (usize, usize) {
        let mut small = 0;
        let mut large = 0;
        for w in &self.workloads {
            if w.vector_len <= threshold {
                small += w.kernels;
            } else {
                large += w.kernels;
            }
        }
        (small, large)
    }

    /// The whole model at batch size `batch`: every layer's VDP count
    /// scales with the batch while weights stay stationary
    /// (see [`VdpWorkload::batched`]).
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn with_batch(&self, batch: usize) -> CnnModel {
        CnnModel {
            name: self.name.clone(),
            workloads: self.workloads.iter().map(|w| w.batched(batch)).collect(),
        }
    }

    /// Census over convolution kernels only (the paper's Table II counts
    /// conv kernel tensors; FC rows are excluded there).
    pub fn conv_kernel_census(&self, threshold: usize) -> (usize, usize) {
        let mut small = 0;
        let mut large = 0;
        for w in self.workloads.iter().filter(|w| w.ops_per_kernel > 1) {
            if w.vector_len <= threshold {
                small += w.kernels;
            } else {
                large += w.kernels;
            }
        }
        (small, large)
    }
}

/// Shape-tracking builder used by the per-architecture constructors.
struct Builder {
    name: String,
    h: usize,
    w: usize,
    c: usize,
    workloads: Vec<VdpWorkload>,
}

impl Builder {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            h: 224,
            w: 224,
            c: 3,
            workloads: Vec::new(),
        }
    }

    fn out_hw(h: usize, w: usize, k: usize, s: usize, p: usize) -> (usize, usize) {
        ((h + 2 * p - k) / s + 1, (w + 2 * p - k) / s + 1)
    }

    /// Standard convolution; updates the tracked shape.
    fn conv(&mut self, layer: &str, out_c: usize, k: usize, s: usize, p: usize) {
        self.conv_grouped(layer, out_c, k, s, p, 1);
    }

    /// Grouped convolution (`groups == channels` is depthwise).
    fn conv_grouped(
        &mut self,
        layer: &str,
        out_c: usize,
        k: usize,
        s: usize,
        p: usize,
        groups: usize,
    ) {
        assert!(
            self.c.is_multiple_of(groups),
            "{layer}: channels {} not divisible by groups {groups}",
            self.c
        );
        assert!(
            out_c.is_multiple_of(groups),
            "{layer}: kernels {out_c} not divisible by groups {groups}"
        );
        let (h, w) = Self::out_hw(self.h, self.w, k, s, p);
        self.workloads.push(VdpWorkload {
            layer: layer.to_string(),
            vector_len: k * k * self.c / groups,
            kernels: out_c,
            ops_per_kernel: h * w,
        });
        self.h = h;
        self.w = w;
        self.c = out_c;
    }

    /// Depthwise convolution.
    fn dwconv(&mut self, layer: &str, k: usize, s: usize, p: usize) {
        self.conv_grouped(layer, self.c, k, s, p, self.c);
    }

    /// Pooling only changes the tracked spatial size.
    fn pool(&mut self, k: usize, s: usize, p: usize) {
        let (h, w) = Self::out_hw(self.h, self.w, k, s, p);
        self.h = h;
        self.w = w;
    }

    fn global_pool(&mut self) {
        self.h = 1;
        self.w = 1;
    }

    /// Fully-connected head.
    fn fc(&mut self, layer: &str, out: usize) {
        self.workloads.push(VdpWorkload {
            layer: layer.to_string(),
            vector_len: self.c * self.h * self.w,
            kernels: out,
            ops_per_kernel: 1,
        });
        self.c = out;
        self.h = 1;
        self.w = 1;
    }

    /// Overrides the tracked channel count (concat / split bookkeeping).
    fn set_channels(&mut self, c: usize) {
        self.c = c;
    }

    fn finish(self) -> CnnModel {
        CnnModel {
            name: self.name,
            workloads: self.workloads,
        }
    }
}

/// GoogleNet (Inception v1, Szegedy et al. 2014).
pub fn googlenet() -> CnnModel {
    let mut b = Builder::new("GoogleNet");
    b.conv("conv1", 64, 7, 2, 3);
    b.pool(3, 2, 1);
    b.conv("conv2_reduce", 64, 1, 1, 0);
    b.conv("conv2", 192, 3, 1, 1);
    b.pool(3, 2, 1);

    // (c1, c3r, c3, c5r, c5, pool_proj)
    let blocks: [(&str, [usize; 6]); 9] = [
        ("3a", [64, 96, 128, 16, 32, 32]),
        ("3b", [128, 128, 192, 32, 96, 64]),
        ("4a", [192, 96, 208, 16, 48, 64]),
        ("4b", [160, 112, 224, 24, 64, 64]),
        ("4c", [128, 128, 256, 24, 64, 64]),
        ("4d", [112, 144, 288, 32, 64, 64]),
        ("4e", [256, 160, 320, 32, 128, 128]),
        ("5a", [256, 160, 320, 32, 128, 128]),
        ("5b", [384, 192, 384, 48, 128, 128]),
    ];
    for (name, [c1, c3r, c3, c5r, c5, pp]) in blocks {
        if name == "4a" || name == "5a" {
            b.pool(3, 2, 1); // max pool between inception stages
        }
        let in_c = b.c;
        // Branch 1: 1x1.
        b.conv(&format!("inception_{name}/1x1"), c1, 1, 1, 0);
        b.set_channels(in_c);
        // Branch 2: 1x1 reduce + 3x3.
        b.conv(&format!("inception_{name}/3x3_reduce"), c3r, 1, 1, 0);
        b.conv(&format!("inception_{name}/3x3"), c3, 3, 1, 1);
        b.set_channels(in_c);
        // Branch 3: 1x1 reduce + 5x5.
        b.conv(&format!("inception_{name}/5x5_reduce"), c5r, 1, 1, 0);
        b.conv(&format!("inception_{name}/5x5"), c5, 5, 1, 2);
        b.set_channels(in_c);
        // Branch 4: 3x3 maxpool (same size) + 1x1 projection.
        b.conv(&format!("inception_{name}/pool_proj"), pp, 1, 1, 0);
        // Concatenate branches.
        b.set_channels(c1 + c3 + c5 + pp);
    }
    b.global_pool();
    b.fc("fc", 1000);
    b.finish()
}

/// ResNet50 (He et al. 2015), v1.5 variant (stride in the 3×3).
pub fn resnet50() -> CnnModel {
    let mut b = Builder::new("ResNet50");
    b.conv("conv1", 64, 7, 2, 3);
    b.pool(3, 2, 1);

    let stages: [(&str, usize, usize, usize, usize); 4] = [
        ("layer1", 64, 256, 3, 1),
        ("layer2", 128, 512, 4, 2),
        ("layer3", 256, 1024, 6, 2),
        ("layer4", 512, 2048, 3, 2),
    ];
    for (stage, mid, out, blocks, first_stride) in stages {
        for blk in 0..blocks {
            let stride = if blk == 0 { first_stride } else { 1 };
            let in_c = b.c;
            b.conv(&format!("{stage}.{blk}.conv1"), mid, 1, 1, 0);
            b.conv(&format!("{stage}.{blk}.conv2"), mid, 3, stride, 1);
            b.conv(&format!("{stage}.{blk}.conv3"), out, 1, 1, 0);
            if blk == 0 {
                // Downsample shortcut runs on the block input.
                let (h_out, w_out) = (b.h, b.w);
                b.workloads.push(VdpWorkload {
                    layer: format!("{stage}.{blk}.downsample"),
                    vector_len: in_c,
                    kernels: out,
                    ops_per_kernel: h_out * w_out,
                });
            }
        }
    }
    b.global_pool();
    b.fc("fc", 1000);
    b.finish()
}

/// MobileNet_V2 (Sandler et al. 2018), width 1.0.
pub fn mobilenet_v2() -> CnnModel {
    let mut b = Builder::new("MobileNet_V2");
    b.conv("conv_stem", 32, 3, 2, 1);

    // (expansion t, output channels c, repeats n, first stride s)
    let cfg: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut idx = 0;
    for (t, c_out, n, s) in cfg {
        for rep in 0..n {
            let stride = if rep == 0 { s } else { 1 };
            let in_c = b.c;
            let hidden = in_c * t;
            if t != 1 {
                b.conv(&format!("block{idx}.expand"), hidden, 1, 1, 0);
            }
            b.dwconv(&format!("block{idx}.dw"), 3, stride, 1);
            b.conv(&format!("block{idx}.project"), c_out, 1, 1, 0);
            idx += 1;
        }
    }
    b.conv("conv_head", 1280, 1, 1, 0);
    b.global_pool();
    b.fc("fc", 1000);
    b.finish()
}

/// ShuffleNet_V2 (Ma et al. 2018), width 1.0.
pub fn shufflenet_v2() -> CnnModel {
    let mut b = Builder::new("ShuffleNet_V2");
    b.conv("conv1", 24, 3, 2, 1);
    b.pool(3, 2, 1);

    // (stage name, output channels, units)
    let stages: [(&str, usize, usize); 3] =
        [("stage2", 116, 4), ("stage3", 232, 8), ("stage4", 464, 4)];
    for (stage, out_c, units) in stages {
        let half = out_c / 2;
        for unit in 0..units {
            if unit == 0 {
                // Spatial-down unit: both branches process the full input.
                let in_c = b.c;
                // Branch 1: dw 3x3 s2 + 1x1.
                b.set_channels(in_c);
                b.dwconv(&format!("{stage}.0.branch1.dw"), 3, 2, 1);
                b.conv(&format!("{stage}.0.branch1.pw"), half, 1, 1, 0);
                let (h, w) = (b.h, b.w);
                // Branch 2: 1x1 + dw 3x3 s2 + 1x1 (replay from the unit
                // input shape).
                b.h *= 2;
                b.w *= 2;
                b.set_channels(in_c);
                b.conv(&format!("{stage}.0.branch2.pw1"), half, 1, 1, 0);
                b.dwconv(&format!("{stage}.0.branch2.dw"), 3, 2, 1);
                b.conv(&format!("{stage}.0.branch2.pw2"), half, 1, 1, 0);
                assert_eq!((b.h, b.w), (h, w), "branch shapes must agree");
                b.set_channels(out_c);
            } else {
                // Basic unit: channel split, one branch computes.
                b.set_channels(half);
                b.conv(&format!("{stage}.{unit}.pw1"), half, 1, 1, 0);
                b.dwconv(&format!("{stage}.{unit}.dw"), 3, 1, 1);
                b.conv(&format!("{stage}.{unit}.pw2"), half, 1, 1, 0);
                b.set_channels(out_c);
            }
        }
    }
    b.conv("conv5", 1024, 1, 1, 0);
    b.global_pool();
    b.fc("fc", 1000);
    b.finish()
}

/// VGG16 (Simonyan & Zisserman 2014) — used by the paper's Table II
/// kernel census.
pub fn vgg16() -> CnnModel {
    let mut b = Builder::new("VGG16");
    let stages: [(&str, usize, usize); 5] = [
        ("conv1", 64, 2),
        ("conv2", 128, 2),
        ("conv3", 256, 3),
        ("conv4", 512, 3),
        ("conv5", 512, 3),
    ];
    for (stage, channels, repeats) in stages {
        for rep in 0..repeats {
            b.conv(&format!("{stage}_{}", rep + 1), channels, 3, 1, 1);
        }
        b.pool(2, 2, 0);
    }
    b.fc("fc6", 4096);
    b.fc("fc7", 4096);
    b.fc("fc8", 1000);
    b.finish()
}

/// DenseNet-121 (Huang et al. 2017) — used by the paper's Table II
/// kernel census. Growth rate 32, bottleneck width 4·k.
pub fn densenet121() -> CnnModel {
    let mut b = Builder::new("DenseNet121");
    const GROWTH: usize = 32;
    b.conv("conv1", 64, 7, 2, 3);
    b.pool(3, 2, 1);

    let blocks: [(&str, usize); 4] = [
        ("denseblock1", 6),
        ("denseblock2", 12),
        ("denseblock3", 24),
        ("denseblock4", 16),
    ];
    for (bi, (name, layers)) in blocks.iter().enumerate() {
        let mut channels = b.c;
        for l in 0..*layers {
            // Bottleneck: 1x1 to 4k channels, then 3x3 to k channels,
            // concatenated onto the running feature map.
            b.set_channels(channels);
            b.conv(&format!("{name}.{l}.conv1x1"), 4 * GROWTH, 1, 1, 0);
            b.conv(&format!("{name}.{l}.conv3x3"), GROWTH, 3, 1, 1);
            channels += GROWTH;
        }
        b.set_channels(channels);
        if bi < 3 {
            // Transition: 1x1 halving channels + 2x2 average pool.
            b.conv(&format!("transition{}", bi + 1), channels / 2, 1, 1, 0);
            b.pool(2, 2, 0);
        }
    }
    b.global_pool();
    b.fc("fc", 1000);
    b.finish()
}

/// All four evaluated models in the paper's reporting order.
pub fn all_models() -> Vec<CnnModel> {
    vec![googlenet(), resnet50(), mobilenet_v2(), shufflenet_v2()]
}

/// The Table II census set: the two evaluated large CNNs plus VGG16 and
/// DenseNet, matching the paper's table.
pub fn census_models() -> Vec<CnnModel> {
    vec![resnet50(), googlenet(), vgg16(), densenet121()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_conv_kernel_count_matches_architecture() {
        // Known closed-form: 64 + Σ stages = 26560 conv kernels
        // (paper Table II reports 26563 total across both buckets).
        let m = resnet50();
        let conv_kernels: usize = m
            .workloads
            .iter()
            .filter(|w| w.layer != "fc")
            .map(|w| w.kernels)
            .sum();
        assert_eq!(conv_kernels, 26560);
    }

    #[test]
    fn resnet50_max_vector_is_4608() {
        // Section II-B: ResNet50's largest kernel vector is
        // 3·3·512 = 4608 points.
        assert_eq!(resnet50().max_vector_len(), 4608);
    }

    #[test]
    fn resnet50_macs_magnitude() {
        // ~4.1 GMACs at 224² (well-known figure; v1.5 is ~4.1e9).
        let macs = resnet50().total_macs();
        assert!(
            (3.5e9..4.5e9).contains(&(macs as f64)),
            "ResNet50 MACs = {macs}"
        );
    }

    #[test]
    fn googlenet_macs_magnitude() {
        // ~1.5 GMACs.
        let macs = googlenet().total_macs();
        assert!(
            (1.3e9..1.7e9).contains(&(macs as f64)),
            "GoogleNet MACs = {macs}"
        );
    }

    #[test]
    fn mobilenet_v2_macs_magnitude() {
        // ~300 MMACs.
        let macs = mobilenet_v2().total_macs();
        assert!(
            (2.5e8..3.6e8).contains(&(macs as f64)),
            "MobileNet_V2 MACs = {macs}"
        );
    }

    #[test]
    fn shufflenet_v2_macs_magnitude() {
        // ~146 MMACs.
        let macs = shufflenet_v2().total_macs();
        assert!(
            (1.2e8..1.8e8).contains(&(macs as f64)),
            "ShuffleNet_V2 MACs = {macs}"
        );
    }

    #[test]
    fn census_large_kernels_dominate_big_cnns() {
        // Table II: >98 % of kernels have S > 44 across all four CNNs for
        // the big models; the small models keep their depthwise kernels
        // (S = 9) in the small bucket.
        for m in [googlenet(), resnet50()] {
            let (small, large) = m.kernel_census(44);
            let frac = large as f64 / (small + large) as f64;
            assert!(frac > 0.98, "{}: large fraction {frac}", m.name);
        }
        for m in [mobilenet_v2(), shufflenet_v2()] {
            let (small, large) = m.kernel_census(44);
            assert!(small > 0, "{} must have depthwise kernels ≤ 44", m.name);
            let frac = large as f64 / (small + large) as f64;
            assert!(frac > 0.5, "{}: large fraction {frac}", m.name);
        }
    }

    #[test]
    fn depthwise_layers_have_s9() {
        let m = mobilenet_v2();
        let dw: Vec<&VdpWorkload> = m
            .workloads
            .iter()
            .filter(|w| w.layer.ends_with(".dw"))
            .collect();
        assert_eq!(dw.len(), 17, "17 inverted-residual blocks");
        assert!(dw.iter().all(|w| w.vector_len == 9));
    }

    #[test]
    fn spatial_bookkeeping_ends_at_7x7() {
        // All four nets end their conv trunk at 7×7 before global pooling;
        // check via the last conv workload's ops_per_kernel.
        for m in all_models() {
            let last_conv = m
                .workloads
                .iter()
                .rev()
                .find(|w| w.ops_per_kernel > 1)
                .unwrap();
            assert_eq!(
                last_conv.ops_per_kernel, 49,
                "{}: last conv at {} positions",
                m.name, last_conv.ops_per_kernel
            );
        }
    }

    #[test]
    fn fc_heads_are_1000_way() {
        for m in all_models() {
            let fc = m.workloads.last().unwrap();
            assert_eq!(fc.kernels, 1000, "{}", m.name);
            assert_eq!(fc.ops_per_kernel, 1);
        }
    }

    #[test]
    fn vgg16_macs_magnitude() {
        // ~15.5 GMACs — the classic figure.
        let macs = vgg16().total_macs();
        assert!(
            (14.5e9..16.0e9).contains(&(macs as f64)),
            "VGG16 MACs = {macs}"
        );
    }

    #[test]
    fn vgg16_conv_kernel_count() {
        // 2·64 + 2·128 + 3·256 + 6·512 = 4224 conv kernels (paper's
        // Table II total for VGG16 is 69 + 4168 = 4237, from Keras'
        // including-biases accounting).
        let (small, large) = vgg16().conv_kernel_census(44);
        assert_eq!(small + large, 4224);
        // conv1_1 kernels are 3·3·3 = 27 ≤ 44.
        assert_eq!(small, 64);
    }

    #[test]
    fn densenet121_kernel_count_matches_paper() {
        // Paper Table II: 1 + 10242 = 10243 DenseNet kernels; our
        // bias-free transcription counts 10240 conv kernels.
        let (small, large) = densenet121().conv_kernel_census(44);
        assert_eq!(small + large, 10240);
        assert!(
            large as f64 / (small + large) as f64 > 0.98,
            "DenseNet is dominated by S>44 kernels"
        );
    }

    #[test]
    fn densenet121_channel_bookkeeping() {
        // Final dense block ends at 1024 channels before the classifier.
        let m = densenet121();
        let fc = m.workloads.last().unwrap();
        assert_eq!(fc.vector_len, 1024);
        // ~2.9 GMACs.
        let macs = m.total_macs();
        assert!(
            (2.5e9..3.3e9).contains(&(macs as f64)),
            "DenseNet121 MACs = {macs}"
        );
    }

    #[test]
    fn census_models_are_the_table_ii_set() {
        let names: Vec<String> = census_models().into_iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["ResNet50", "GoogleNet", "VGG16", "DenseNet121"]);
    }

    #[test]
    fn workload_arithmetic() {
        let w = VdpWorkload {
            layer: "t".into(),
            vector_len: 10,
            kernels: 4,
            ops_per_kernel: 25,
        };
        assert_eq!(w.vdp_ops(), 100);
        assert_eq!(w.macs(), 1000);
    }

    #[test]
    fn batched_workload_scales_ops_not_weights() {
        let w = VdpWorkload {
            layer: "t".into(),
            vector_len: 10,
            kernels: 4,
            ops_per_kernel: 25,
        };
        let b = w.batched(8);
        assert_eq!(b.vector_len, 10);
        assert_eq!(b.kernels, 4);
        assert_eq!(b.ops_per_kernel, 200);
        assert_eq!(b.vdp_ops(), 8 * w.vdp_ops());
        assert_eq!(b.macs(), 8 * w.macs());
        assert_eq!(w.batched(1).ops_per_kernel, w.ops_per_kernel);
    }

    #[test]
    fn with_batch_scales_every_layer_linearly() {
        let m = shufflenet_v2();
        let b = m.with_batch(16);
        assert_eq!(b.name, m.name);
        assert_eq!(b.workloads.len(), m.workloads.len());
        assert_eq!(b.total_vdp_ops(), 16 * m.total_vdp_ops());
        assert_eq!(b.total_macs(), 16 * m.total_macs());
        // Kernel census (weight tensors) is batch-invariant.
        assert_eq!(b.kernel_census(44), m.kernel_census(44));
        assert_eq!(b.max_vector_len(), m.max_vector_len());
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn batched_zero_panics() {
        let w = VdpWorkload {
            layer: "t".into(),
            vector_len: 1,
            kernels: 1,
            ops_per_kernel: 1,
        };
        let _ = w.batched(0);
    }
}
