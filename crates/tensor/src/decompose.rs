//! Explicit DIV/DKV decomposition — Section II-B of the paper.
//!
//! A convolution's input vector `I` and kernel vector `F` (each
//! `S = K·K·D` points) are split into `C = ceil(S/N)` **decomposed input
//! vectors** (DIVs) and **decomposed kernel vectors** (DKVs) of `N`
//! points each (zero-padded at the tail), one pair per VDPE pass. The
//! quantized conv layer does this implicitly inside its loop; this
//! module materializes the decomposition — what the accelerator's
//! preprocessing-and-mapping unit (Fig. 8) ships to the VDPCs — and the
//! tests prove the explicit path computes the identical convolution.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One decomposed vector (a DIV or a DKV): `N` points, tail zero-padded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomposed<T> {
    /// Chunk index within the original vector.
    pub chunk: usize,
    /// The `N` points (tail chunks padded with zeros).
    pub points: Vec<T>,
    /// How many of the points are live (non-padding).
    pub live: usize,
}

/// Splits a flat vector into `ceil(len/n)` chunks of exactly `n` points,
/// zero-padding the final chunk.
///
/// # Panics
/// Panics if `n == 0`.
pub fn decompose<T: Copy + Default>(vector: &[T], n: usize) -> Vec<Decomposed<T>> {
    assert!(n > 0, "VDPE size must be positive");
    if vector.is_empty() {
        return Vec::new();
    }
    vector
        .chunks(n)
        .enumerate()
        .map(|(chunk, slice)| {
            let mut points = vec![T::default(); n];
            points[..slice.len()].copy_from_slice(slice);
            Decomposed {
                chunk,
                points,
                live: slice.len(),
            }
        })
        .collect()
}

/// Gathers the flattened `(c, y, x)`-ordered input vector (the `I` of
/// Eq. 1) for output position `(oy, ox)` of a convolution.
///
/// # Panics
/// Panics if the kernel does not fit the padded input.
pub fn gather_input_vector(
    input: &Tensor<u32>,
    oy: usize,
    ox: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Vec<u32> {
    let [d, h, w] = *input.dims() else {
        panic!("input must be rank 3, got {:?}", input.dims());
    };
    assert!(
        h + 2 * padding >= kernel && w + 2 * padding >= kernel,
        "kernel {kernel} does not fit {h}x{w} with padding {padding}"
    );
    let mut out = Vec::with_capacity(d * kernel * kernel);
    for c in 0..d {
        for ky in 0..kernel {
            let iy = oy * stride + ky;
            for kx in 0..kernel {
                let ix = ox * stride + kx;
                let v = iy
                    .checked_sub(padding)
                    .zip(ix.checked_sub(padding))
                    .filter(|&(y, x)| y < h && x < w)
                    .map_or(0, |(y, x)| input.at3(c, y, x));
                out.push(v);
            }
        }
    }
    out
}

/// Flattens kernel `k` of a `[L, D, K, K]` weight tensor into its kernel
/// vector (the `F` of Eq. 1), in the same `(c, y, x)` order as
/// [`gather_input_vector`].
///
/// # Panics
/// Panics if `k` is out of range.
pub fn kernel_vector(weights: &Tensor<i32>, k: usize) -> Vec<i32> {
    let [l, d, kh, kw] = *weights.dims() else {
        panic!("weights must be rank 4, got {:?}", weights.dims());
    };
    assert!(k < l, "kernel {k} out of {l}");
    let len = d * kh * kw;
    weights.as_slice()[k * len..(k + 1) * len].to_vec()
}

/// Computes one convolution output via the explicit DIV/DKV path: gather
/// → decompose both vectors → one engine pass per chunk pair → sum.
#[allow(clippy::too_many_arguments)]
pub fn conv_output_via_decomposition(
    input: &Tensor<u32>,
    weights: &Tensor<i32>,
    k: usize,
    oy: usize,
    ox: usize,
    stride: usize,
    padding: usize,
    vdpe_size: usize,
    engine: &dyn crate::engine::VdpEngine,
) -> f64 {
    let kernel = weights.dims()[2];
    let iv = gather_input_vector(input, oy, ox, kernel, stride, padding);
    let kv = kernel_vector(weights, k);
    assert_eq!(iv.len(), kv.len(), "vector length mismatch");
    let divs = decompose(&iv, vdpe_size);
    let dkvs = decompose(&kv, vdpe_size);
    divs.iter()
        .zip(&dkvs)
        .map(|(div, dkv)| engine.vdp(&div.points, &dkv.points))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::layers::QConv2d;
    use crate::quant::{ActivationQuant, Requant, WeightQuant};
    use crate::VdpEngine;

    #[test]
    fn decompose_pads_tail_chunk() {
        // The paper's example: S = 4608 on N = 176 -> 27 chunks, last
        // chunk has 4608 - 26*176 = 32 live points.
        let v: Vec<u32> = (0..4608).collect();
        let chunks = decompose(&v, 176);
        assert_eq!(chunks.len(), 27);
        assert!(chunks[..26].iter().all(|c| c.live == 176));
        let tail = &chunks[26];
        assert_eq!(tail.live, 32);
        assert_eq!(tail.points.len(), 176);
        assert!(tail.points[32..].iter().all(|&p| p == 0));
        assert_eq!(tail.points[0], 26 * 176);
    }

    #[test]
    fn decompose_preserves_every_point() {
        let v: Vec<i32> = (0..1000).map(|k| k * 3 - 500).collect();
        let chunks = decompose(&v, 176);
        let rebuilt: Vec<i32> = chunks
            .iter()
            .flat_map(|c| c.points[..c.live].iter().copied())
            .collect();
        assert_eq!(rebuilt, v);
    }

    #[test]
    fn empty_vector_decomposes_to_nothing() {
        assert!(decompose::<u32>(&[], 176).is_empty());
    }

    #[test]
    fn decomposed_vdp_equals_whole_vdp() {
        // Zero padding contributes nothing, so chunked dot products sum
        // to the whole-vector dot product.
        let iv: Vec<u32> = (0..400).map(|k| (k * 7) % 256).collect();
        let kv: Vec<i32> = (0..400).map(|k| (k * 11) % 255 - 127).collect();
        let whole = ExactEngine.vdp(&iv, &kv);
        let chunked: f64 = decompose(&iv, 176)
            .iter()
            .zip(&decompose(&kv, 176))
            .map(|(a, b)| ExactEngine.vdp(&a.points, &b.points))
            .sum();
        assert_eq!(whole, chunked);
    }

    #[test]
    fn explicit_decomposition_path_matches_qconv() {
        // The materialized DIV/DKV path must produce the exact same
        // accumulator as the quantized conv layer's internal loop.
        let conv = QConv2d {
            name: "probe".into(),
            weights: Tensor::from_fn(&[4, 3, 3, 3], |i| (i as i32 * 13) % 255 - 127),
            bias: vec![0.0; 4],
            stride: 2,
            padding: 1,
            groups: 1,
            requant: Requant::new(
                ActivationQuant {
                    scale: 1.0,
                    bits: 8,
                },
                WeightQuant {
                    scale: 1.0,
                    bits: 8,
                },
                ActivationQuant {
                    scale: 1e6,
                    bits: 8,
                }, // wide scale: no clipping
            ),
        };
        let input = Tensor::from_fn(&[3, 8, 8], |i| (i as u32 * 5) % 256);
        let out = conv.forward(&input, &ExactEngine);
        let (h_out, w_out) = conv.output_hw(8, 8);
        for k in 0..4 {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let acc = conv_output_via_decomposition(
                        &input,
                        &conv.weights,
                        k,
                        oy,
                        ox,
                        2,
                        1,
                        16,
                        &ExactEngine,
                    );
                    let expected = conv.requant.apply(acc);
                    assert_eq!(out.at3(k, oy, ox), expected, "k={k} oy={oy} ox={ox}");
                }
            }
        }
    }

    #[test]
    fn gather_respects_padding_and_stride() {
        let input = Tensor::from_fn(&[1, 3, 3], |i| i as u32 + 1);
        // 3x3 kernel at (0,0) with padding 1: corners are zero-padded.
        let v = gather_input_vector(&input, 0, 0, 3, 1, 1);
        assert_eq!(v, vec![0, 0, 0, 0, 1, 2, 0, 4, 5]);
        // Stride 2 at (1,1) without padding on a 1x1 kernel region.
        let v2 = gather_input_vector(&input, 1, 1, 1, 2, 0);
        assert_eq!(v2, vec![9]);
    }

    #[test]
    fn kernel_vector_matches_row_major_layout() {
        let w = Tensor::from_fn(&[2, 2, 2, 2], |i| i as i32);
        assert_eq!(kernel_vector(&w, 0), (0..8).collect::<Vec<i32>>());
        assert_eq!(kernel_vector(&w, 1), (8..16).collect::<Vec<i32>>());
    }
}
