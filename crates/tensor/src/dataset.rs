//! Synthetic classification dataset.
//!
//! Substitution for ImageNet (see DESIGN.md §2.3): the accuracy experiment
//! needs a dataset on which a CNN can be trained in-repo and whose
//! accuracy under SCONNA's error injection can be compared against exact
//! int8 inference. Each class is a smooth random template; samples are the
//! template plus pixel noise, so class separation (and hence the
//! difficulty of the task) is controlled by the noise level.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled sample: single-channel image plus class index.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Image, rank-3 `[1, H, W]`, values in `[0, 1]`.
    pub image: Tensor<f32>,
    /// Ground-truth class.
    pub label: usize,
}

/// Synthetic dataset generator.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Class templates, each `[1, H, W]`.
    pub templates: Vec<Tensor<f32>>,
    /// Image side length.
    pub size: usize,
    /// Pixel noise amplitude.
    pub noise: f32,
}

impl SyntheticDataset {
    /// Creates `classes` random smooth templates of `size`×`size` pixels.
    ///
    /// # Panics
    /// Panics if `classes == 0` or `size < 4`.
    pub fn new(classes: usize, size: usize, noise: f32, seed: u64) -> Self {
        assert!(classes > 0, "need at least one class");
        assert!(size >= 4, "image side must be at least 4");
        let mut rng = StdRng::seed_from_u64(seed);
        let templates = (0..classes)
            .map(|_| {
                // Coarse random grid upsampled 4x => smooth blobs that a
                // small CNN can separate but that overlap pixel-wise.
                let coarse: Vec<f32> = (0..(size / 4 + 1) * (size / 4 + 1))
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect();
                let cw = size / 4 + 1;
                Tensor::from_fn(&[1, size, size], |i| {
                    let (y, x) = (i / size, i % size);
                    coarse[(y / 4) * cw + x / 4]
                })
            })
            .collect();
        Self {
            templates,
            size,
            noise,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.templates.len()
    }

    /// Draws one noisy sample of class `label`.
    ///
    /// # Panics
    /// Panics if `label` is out of range.
    pub fn sample<R: Rng + ?Sized>(&self, label: usize, rng: &mut R) -> Sample {
        assert!(label < self.classes(), "class {label} out of range");
        let t = &self.templates[label];
        let image = Tensor::from_fn(&[1, self.size, self.size], |i| {
            let noise = self.noise * (rng.gen_range(0.0f32..1.0) - 0.5) * 2.0;
            (t.as_slice()[i] + noise).clamp(0.0, 1.0)
        });
        Sample { image, label }
    }

    /// Draws a balanced batch of `per_class` samples per class.
    pub fn batch(&self, per_class: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(per_class * self.classes());
        for label in 0..self.classes() {
            for _ in 0..per_class {
                out.push(self.sample(label, &mut rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let a = SyntheticDataset::new(4, 16, 0.1, 7);
        let b = SyntheticDataset::new(4, 16, 0.1, 7);
        for (ta, tb) in a.templates.iter().zip(&b.templates) {
            assert_eq!(ta.as_slice(), tb.as_slice());
        }
    }

    #[test]
    fn templates_differ_between_classes() {
        let d = SyntheticDataset::new(4, 16, 0.1, 7);
        let t0 = d.templates[0].as_slice();
        let t1 = d.templates[1].as_slice();
        let diff: f32 = t0.iter().zip(t1).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1.0, "templates must be distinguishable, diff {diff}");
    }

    #[test]
    fn samples_stay_in_unit_range() {
        let d = SyntheticDataset::new(3, 12, 0.5, 1);
        let batch = d.batch(5, 99);
        assert_eq!(batch.len(), 15);
        for s in &batch {
            assert!(s.image.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(s.label < 3);
        }
    }

    #[test]
    fn noise_perturbs_but_preserves_class_structure() {
        let d = SyntheticDataset::new(2, 16, 0.1, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let s = d.sample(0, &mut rng);
        // Sample is closer to its own template than to the other class.
        let dist = |t: &Tensor<f32>| -> f32 {
            t.as_slice()
                .iter()
                .zip(s.image.as_slice())
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        assert!(dist(&d.templates[0]) < dist(&d.templates[1]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sample_bad_label_panics() {
        let d = SyntheticDataset::new(2, 8, 0.1, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = d.sample(2, &mut rng);
    }
}
