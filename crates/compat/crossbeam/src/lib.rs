//! Offline stand-in for `crossbeam 0.8` — see `crates/compat/README.md`.
//!
//! Only the surface the workspace uses: `queue::SegQueue`. The stand-in is
//! a mutex-guarded `VecDeque` rather than a lock-free segmented queue —
//! same API and semantics (unbounded MPMC, `&self` methods), adequate for
//! the coarse-grained work items the simulator pushes through it.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded multi-producer multi-consumer FIFO queue.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes `value` onto the back of the queue.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Pops from the front of the queue, or `None` if empty.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Returns the number of queued items.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Returns `true` if the queue holds no items.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            // A panic while holding the lock poisons it; the queue itself
            // is still consistent, so keep serving.
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::SegQueue;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            q.push(3);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), Some(3));
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn shared_across_threads() {
            let q = SegQueue::new();
            for i in 0..1000 {
                q.push(i);
            }
            let total: i64 = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        s.spawn(|| {
                            let mut sum = 0i64;
                            while let Some(v) = q.pop() {
                                sum += v;
                            }
                            sum
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, (0..1000).sum::<i64>());
        }
    }
}
