//! Offline stand-in for `criterion 0.5` — see `crates/compat/README.md`.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`Criterion`, `benchmark_group`, `Bencher::iter`, `black_box`,
//! `Throughput`, the `criterion_group!`/`criterion_main!` macros) over a
//! simple warmup-then-sample timer that reports the median ns/iter. None
//! of criterion's statistical analysis, baselines, or HTML reports exist
//! here; CI compiles benches with `cargo bench --no-run` and treats local
//! runs as indicative only.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing harness handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_count` samples after a warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count that runs ~5 ms.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn median_ns_per_iter(&mut self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.sort();
        let mid = self.samples[self.samples.len() / 2];
        mid.as_nanos() as f64 / self.iters_per_sample as f64
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, None, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (report flushing is per-benchmark here; no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_count: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_count,
    };
    f(&mut b);
    let ns = b.median_ns_per_iter();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("{name:<48} {ns:>14.1} ns/iter{rate}");
}

/// Bundles benchmark functions into a group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main`, running each group, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.throughput(Throughput::Elements(4));
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(2)));
        g.finish();
    }
}
