//! Offline stand-in for `serde_derive` — see `crates/compat/README.md`.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` accept any item and
//! emit no code. No workspace code bounds on the serde traits or consumes
//! serialized bytes, so an empty expansion satisfies every use site while
//! keeping the annotations in place for the day the real crates land.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
