//! Offline stand-in for `rand 0.8` — see `crates/compat/README.md`.
//!
//! Implements the subset of the `rand` API this workspace uses:
//! [`RngCore`], [`Rng::gen_range`] over integer and float ranges,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64: a small,
//! well-studied generator with 256 bits of state. It does **not** emit the
//! same stream as upstream's ChaCha12-based `StdRng`; in-repo consumers
//! rely only on seeded determinism and statistical quality, both of which
//! hold.

/// Core random-number generation: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`, integer or float).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array for `StdRng`).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (upstream's scheme).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Maps a `u64` to a double in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a `u64` to a float in `[0, 1)` with 24 bits of precision.
#[inline]
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `StdRng`; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod distributions {
    //! Range-sampling machinery backing [`Rng::gen_range`](crate::Rng::gen_range).

    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range argument accepted by `gen_range`.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Types uniformly sampleable over half-open and inclusive ranges.
        pub trait SampleUniform: Sized {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "gen_range: empty range");
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                T::sample_inclusive(lo, hi, rng)
            }
        }

        /// Unbiased draw from `[0, span]` (widening-multiply + rejection).
        #[inline]
        fn draw_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
            if span == u64::MAX {
                return rng.next_u64();
            }
            let bound = span + 1;
            // Lemire's method: multiply-shift with a rejection zone.
            let zone = bound.wrapping_neg() % bound;
            loop {
                let wide = (rng.next_u64() as u128) * (bound as u128);
                if (wide as u64) >= zone {
                    return (wide >> 64) as u64;
                }
            }
        }

        macro_rules! impl_uniform_int {
            ($($ty:ty => $unsigned:ty),* $(,)?) => {$(
                // `$ty as $unsigned` is a sign-dropping cast for the
                // signed instantiations and a no-op for the unsigned
                // ones; the allow covers the no-op cases.
                #[allow(trivial_numeric_casts)]
                impl SampleUniform for $ty {
                    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        // span fits the unsigned counterpart because lo < hi.
                        let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64 - 1;
                        lo.wrapping_add(draw_u64(span, rng) as $ty)
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                        lo.wrapping_add(draw_u64(span, rng) as $ty)
                    }
                }
            )*};
        }

        impl_uniform_int!(
            u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
            i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
        );

        impl SampleUniform for f64 {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let sample = lo + (hi - lo) * crate::unit_f64(rng.next_u64());
                // Guard the open upper bound against rounding.
                if sample < hi {
                    sample
                } else {
                    lo.max(hi.next_down())
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (hi - lo) * crate::unit_f64(rng.next_u64())
            }
        }

        impl SampleUniform for f32 {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let sample = lo + (hi - lo) * crate::unit_f32(rng.next_u64());
                if sample < hi {
                    sample
                } else {
                    lo.max(hi.next_down())
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (hi - lo) * crate::unit_f32(rng.next_u64())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.gen_range(0..=u64::MAX - 1)).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.gen_range(0..=u64::MAX - 1)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u32> = (0..16).map(|_| a.gen_range(0..u32::MAX)).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.gen_range(0..u32::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i32 = rng.gen_range(-127..=127);
            assert!((-127..=127).contains(&x));
            let y: u32 = rng.gen_range(0..=255);
            assert!(y <= 255);
            let z: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
            let y: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&y));
        }
    }

    #[test]
    fn negative_float_ranges_stay_in_bounds() {
        // The open-bound guard must step toward -inf for non-positive
        // `hi` too (next_down handles the sign; bits-1 would not).
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..-1.0);
            assert!((-2.0..-1.0).contains(&x));
            let y: f64 = rng.gen_range(-1.0..0.0);
            assert!((-1.0..0.0).contains(&y));
            let z: f32 = rng.gen_range(-0.5f32..0.0);
            assert!((-0.5..0.0).contains(&z));
        }
    }

    #[test]
    fn open_bound_guard_stays_inside_range() {
        // Force the guard path directly: a rounded-to-hi sample must be
        // replaced by a value still inside [lo, hi).
        struct MaxRng;
        impl crate::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        use crate::distributions::uniform::SampleUniform;
        let x = f64::sample_half_open(-2.0, -1.0, &mut MaxRng);
        assert!((-2.0..-1.0).contains(&x), "guarded sample {x}");
        let y = f32::sample_half_open(-1.0f32, 0.0, &mut MaxRng);
        assert!((-1.0..0.0).contains(&y), "guarded sample {y}");
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow ±5%.
            assert!((9_500..=10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..100_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn trait_object_usage_compiles() {
        // The repo passes `&mut R where R: Rng + ?Sized`.
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(0..=255)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = takes_dyn(&mut rng);
    }
}
