//! Offline stand-in for `proptest 1` — see `crates/compat/README.md`.
//!
//! Implements the slice of proptest this workspace's property tests use:
//! the [`proptest!`] macro over `arg in strategy` bindings, range and
//! tuple strategies, [`collection::vec`], and the `prop_assert!` /
//! `prop_assert_eq!` macros. Each generated test runs a fixed number of
//! cases (256) from a generator seeded deterministically from the test's
//! name, so failures reproduce exactly. There is no shrinking and no
//! persistence of failing seeds — on failure the panic message carries
//! the case number.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::RngCore as __RngCore;

/// Number of random cases each property test runs.
pub const CASES: u32 = 256;

/// A source of random values for one property-test run.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner seeded deterministically from `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// Draws one value from `strategy`.
    pub fn draw<S: Strategy>(&mut self, strategy: &S) -> S::Value {
        strategy.sample(&mut self.rng)
    }
}

/// Generates values of `Self::Value` (sample-only stand-in: no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for std::ops::Range<T>
where
    T: rand::distributions::uniform::SampleUniform + PartialOrd + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: rand::distributions::uniform::SampleUniform + PartialOrd + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy over `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "vec strategy: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Asserts a condition inside a property test (panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Declares property tests: each `arg in strategy` binding is drawn
/// [`CASES`] times from a name-seeded deterministic generator.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner = $crate::TestRunner::deterministic(stringify!($name));
                for __case in 0..$crate::CASES {
                    let ($($arg,)+) = ($(__runner.draw(&($strategy)),)+);
                    let __result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = __result {
                        eprintln!(
                            "proptest {}: failed at case {}/{}",
                            stringify!($name), __case, $crate::CASES,
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_and_tuples(a in 0u32..=256, (b, c) in (0u32..10, -5i32..=5)) {
            prop_assert!(a <= 256);
            prop_assert!(b < 10);
            prop_assert!((-5..=5).contains(&c));
        }

        #[test]
        fn vec_strategy(pairs in crate::collection::vec((0u32..=256, -255i32..=255), 1..64)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 64);
            for &(i, w) in &pairs {
                prop_assert!(i <= 256);
                prop_assert!((-255..=255).contains(&w));
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRunner::deterministic("x");
        let mut b = crate::TestRunner::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.draw(&(0u64..1 << 60)), b.draw(&(0u64..1 << 60)));
        }
    }
}
