//! Offline stand-in for `parking_lot 0.12` — see `crates/compat/README.md`.
//!
//! Wraps the std primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly (a panicked holder does not poison
//! the lock for later users).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_is_not_poisoned_by_panics() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
