//! Offline stand-in for `serde 1` — see `crates/compat/README.md`.
//!
//! Provides the `Serialize`/`Deserialize` marker traits and the derive
//! macros. The derives accept the annotated type but emit no impls:
//! nothing in this workspace consumes serialized bytes yet, so the only
//! contract is that `#[derive(Serialize, Deserialize)]` compiles. Swap in
//! the registry crates when real serialization lands.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (no-op stand-in).
pub trait Serialize {}

/// Marker for deserializable types (no-op stand-in).
pub trait Deserialize<'de> {}
