//! Mesh network-on-chip model.
//!
//! The SCONNA system (Fig. 8) connects tiles through a mesh of routers.
//! The model is transaction-level: a transfer's latency is
//! `hops × router_delay + serialization`, with XY dimension-ordered
//! routing giving the hop count, and energy is charged per router
//! traversal.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Coordinates of a tile in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileCoord {
    /// Column (x).
    pub x: usize,
    /// Row (y).
    pub y: usize,
}

/// A rectangular mesh NoC.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MeshNoc {
    /// Mesh width in tiles.
    pub cols: usize,
    /// Mesh height in tiles.
    pub rows: usize,
    /// Per-router traversal latency (Table IV: 2 cycles).
    pub router_latency: SimTime,
    /// Link bandwidth, bytes per second.
    pub link_bandwidth_bps: f64,
}

impl MeshNoc {
    /// Creates a mesh.
    ///
    /// # Panics
    /// Panics on a degenerate mesh or non-positive bandwidth.
    pub fn new(cols: usize, rows: usize, router_latency: SimTime, link_bandwidth_bps: f64) -> Self {
        assert!(cols > 0 && rows > 0, "mesh must be at least 1x1");
        assert!(link_bandwidth_bps > 0.0, "bandwidth must be positive");
        Self {
            cols,
            rows,
            router_latency,
            link_bandwidth_bps,
        }
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.cols * self.rows
    }

    /// Tile coordinate of a linear tile index (row-major).
    ///
    /// # Panics
    /// Panics if the index is out of range.
    pub fn coord(&self, index: usize) -> TileCoord {
        assert!(index < self.tiles(), "tile {index} out of {}", self.tiles());
        TileCoord {
            x: index % self.cols,
            y: index / self.cols,
        }
    }

    /// XY-routing hop count between two tiles (router traversals,
    /// including the destination router; 1 for a self-transfer).
    pub fn hops(&self, from: TileCoord, to: TileCoord) -> usize {
        from.x.abs_diff(to.x) + from.y.abs_diff(to.y) + 1
    }

    /// Latency of transferring `bytes` from one tile to another.
    pub fn transfer_latency(&self, from: TileCoord, to: TileCoord, bytes: usize) -> SimTime {
        let hops = self.hops(from, to) as u64;
        let routing = SimTime::from_ps(self.router_latency.as_ps() * hops);
        let serialization = SimTime::from_secs_f64(bytes as f64 / self.link_bandwidth_bps);
        routing + serialization
    }

    /// Router traversals for energy accounting of a transfer.
    pub fn transfer_router_ops(&self, from: TileCoord, to: TileCoord) -> u64 {
        self.hops(from, to) as u64
    }

    /// Worst-case (corner-to-corner) transfer latency for `bytes`.
    pub fn worst_case_latency(&self, bytes: usize) -> SimTime {
        self.transfer_latency(
            TileCoord { x: 0, y: 0 },
            TileCoord {
                x: self.cols - 1,
                y: self.rows - 1,
            },
            bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> MeshNoc {
        // 4x4 mesh, 2-cycle routers at 1 GHz = 2 ns, 32 GB/s links.
        MeshNoc::new(4, 4, SimTime::from_ns(2), 32e9)
    }

    #[test]
    fn coord_mapping_row_major() {
        let m = mesh();
        assert_eq!(m.coord(0), TileCoord { x: 0, y: 0 });
        assert_eq!(m.coord(5), TileCoord { x: 1, y: 1 });
        assert_eq!(m.coord(15), TileCoord { x: 3, y: 3 });
        assert_eq!(m.tiles(), 16);
    }

    #[test]
    fn hops_manhattan_plus_one() {
        let m = mesh();
        let a = TileCoord { x: 0, y: 0 };
        let b = TileCoord { x: 3, y: 2 };
        assert_eq!(m.hops(a, b), 6);
        assert_eq!(m.hops(a, a), 1);
        // Symmetric.
        assert_eq!(m.hops(a, b), m.hops(b, a));
    }

    #[test]
    fn transfer_latency_components() {
        let m = mesh();
        let a = m.coord(0);
        let b = m.coord(3); // 3 hops east + 1 = 4 routers
        let lat = m.transfer_latency(a, b, 64);
        // 4 × 2 ns + 64 B / 32 GB/s (= 2 ns) = 10 ns.
        assert_eq!(lat, SimTime::from_ns(10));
        assert_eq!(m.transfer_router_ops(a, b), 4);
    }

    #[test]
    fn larger_payload_takes_longer() {
        let m = mesh();
        let a = m.coord(0);
        let b = m.coord(15);
        assert!(m.transfer_latency(a, b, 1024) > m.transfer_latency(a, b, 64));
    }

    #[test]
    fn worst_case_is_corner_to_corner() {
        let m = mesh();
        let wc = m.worst_case_latency(64);
        for i in 0..m.tiles() {
            let lat = m.transfer_latency(m.coord(0), m.coord(i), 64);
            assert!(lat <= wc, "tile {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn coord_out_of_range_panics() {
        let _ = mesh().coord(16);
    }

    #[test]
    #[should_panic(expected = "at least 1x1")]
    fn degenerate_mesh_panics() {
        let _ = MeshNoc::new(0, 4, SimTime::from_ns(1), 1e9);
    }
}
