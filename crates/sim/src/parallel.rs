//! Fork-join data parallelism for parameter sweeps.
//!
//! The benchmark harness sweeps accelerator configurations and Monte-Carlo
//! seeds; each sweep point is independent, so the classic data-parallel
//! map applies. `rayon` is not in the sanctioned offline dependency set,
//! so this is the same fork-join idiom built from `std::thread::scope`
//! plus a `crossbeam` work queue: order-preserving, panic-propagating,
//! work-stealing-by-index.

use crossbeam::queue::SegQueue;
use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Number of worker threads to use (logical CPUs, at least 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Applies `f` to every item on a pool of `workers` threads, preserving
/// input order in the output.
///
/// Panics in `f` propagate to the caller (the scope joins all workers).
pub fn parallel_map_with<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if workers == 1 || n == 1 {
        // Inline fast path: no thread spawn, no queue. Matters on the
        // inference hot path, where conv layers call in with one worker
        // per image while an outer sweep owns the parallelism.
        return items.into_iter().map(f).collect();
    }
    // Index queue: workers steal the next unprocessed index.
    let queue = SegQueue::new();
    for i in 0..n {
        queue.push(i);
    }
    // Items move into slots the workers take from; results come back by
    // index.
    let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| {
                while let Some(i) = queue.pop() {
                    let item = items[i]
                        .lock()
                        .expect("invariant: poisoned only if a sibling worker panicked, which scope re-raises")
                        .take()
                        .expect("invariant: the index queue yields each slot exactly once");
                    let r = f(item);
                    *results[i].lock().expect("invariant: poisoned only if a sibling worker panicked, which scope re-raises") = Some(r);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("invariant: all workers joined un-poisoned at scope exit")
                .expect("invariant: every queued index was processed before scope exit")
        })
        .collect()
}

/// Partitions `0..n` into contiguous ranges of at most `block` items —
/// the fixed (worker-count-independent) work decomposition parallel
/// loops hand to [`parallel_map_with`]. A partition that does not depend
/// on the worker count is what keeps block-parallel results bit-identical
/// for any number of workers.
///
/// # Panics
/// Panics if `block` is zero.
pub fn block_ranges(n: usize, block: usize) -> Vec<std::ops::Range<usize>> {
    assert!(block > 0, "block size must be positive");
    (0..n.div_ceil(block))
        .map(|b| b * block..((b + 1) * block).min(n))
        .collect()
}

/// [`parallel_map_with`] on the default worker count.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(items, default_workers(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<_>>(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map_with((0..1000).collect::<Vec<_>>(), 8, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn single_worker_works() {
        let out = parallel_map_with(vec![3, 1, 4, 1, 5], 1, |i| i + 1);
        assert_eq!(out, vec![4, 2, 5, 2, 6]);
    }

    #[test]
    fn moves_non_clone_values() {
        // T need not be Clone or Sync — only Send.
        let items: Vec<Box<i32>> = (0..10).map(Box::new).collect();
        let out = parallel_map(items, |b| *b * 10);
        assert_eq!(out[9], 90);
    }

    #[test]
    fn workers_exceeding_items_is_fine() {
        let out = parallel_map_with(vec![1, 2], 64, |i| i);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn panic_in_f_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with((0..64).collect::<Vec<_>>(), 4, |i| {
                if i == 33 {
                    panic!("worker died on {i}");
                }
                i
            })
        });
        let panic = result.expect_err("worker panic must reach the caller");
        // std::thread::scope observes the worker's panic on join and
        // re-panics in the caller; its payload is scope's own message
        // ("a scoped thread panicked"), not the worker's.
        let msg = panic
            .downcast_ref::<&str>()
            .map(std::string::ToString::to_string)
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("scoped thread panicked") || msg.contains("worker died on 33"),
            "payload: {msg:?}"
        );
    }

    #[test]
    fn block_ranges_cover_exactly_once() {
        for (n, block) in [(0usize, 3usize), (1, 1), (7, 3), (9, 3), (10, 4), (5, 100)] {
            let ranges = block_ranges(n, block);
            let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
            assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} block={block}");
            assert!(ranges.iter().all(|r| r.len() <= block));
        }
    }

    #[test]
    fn single_worker_fast_path_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with(vec![1, 2, 3], 1, |i| {
                if i == 2 {
                    panic!("inline worker died");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn order_preserved_under_adversarial_timing() {
        // Items take wildly different times, so workers finish out of
        // input order and the index queue interleaves heavily; the output
        // must still come back in input order.
        let out = parallel_map_with((0..200u64).collect::<Vec<_>>(), 8, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(300));
            } else if i % 3 == 0 {
                std::thread::yield_now();
            }
            i * 3
        });
        assert_eq!(out, (0..200).map(|i| i * 3).collect::<Vec<_>>());
    }
}
