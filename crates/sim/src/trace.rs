//! Event tracing: a lightweight recorder for debugging and analyzing
//! simulations — what fired, when, and how densely.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One recorded trace entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Simulation time of the event.
    pub at: SimTime,
    /// Event label (component / transaction name).
    pub label: String,
}

/// A bounded-capacity trace recorder. When full it drops the *newest*
/// entries (keeping the head of the run, which is usually where bugs
/// live) and counts what it dropped.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    entries: Vec<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// Creates a recorder holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if the capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            entries: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event.
    pub fn record(&mut self, at: SimTime, label: &str) {
        if self.entries.len() < self.capacity {
            self.entries.push(TraceEntry {
                at,
                label: label.to_string(),
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded entries, in record order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries dropped after the capacity filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries whose label matches a predicate.
    pub fn filter<'a>(
        &'a self,
        mut pred: impl FnMut(&str) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| pred(&e.label))
    }

    /// Count of entries per distinct label, sorted by label.
    pub fn histogram(&self) -> Vec<(String, usize)> {
        let mut map = std::collections::BTreeMap::<&str, usize>::new();
        for e in &self.entries {
            *map.entry(&e.label).or_default() += 1;
        }
        map.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }

    /// Inter-arrival statistics `(min, mean, max)` over consecutive
    /// recorded entries; `None` with fewer than two entries.
    pub fn inter_arrival(&self) -> Option<(SimTime, SimTime, SimTime)> {
        if self.entries.len() < 2 {
            return None;
        }
        let mut min = SimTime(u64::MAX);
        let mut max = SimTime::ZERO;
        let mut total = 0u64;
        for pair in self.entries.windows(2) {
            let gap = pair[1].at.saturating_sub(pair[0].at);
            min = if gap < min { gap } else { min };
            max = max.max(gap);
            total += gap.as_ps();
        }
        let mean = SimTime::from_ps(total / (self.entries.len() as u64 - 1));
        Some((min, mean, max))
    }

    /// Renders a compact textual timeline (one line per entry).
    pub fn format(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("{:>14}  {}\n", e.at.to_string(), e.label));
        }
        if self.dropped > 0 {
            out.push_str(&format!("... {} entries dropped\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    #[test]
    fn records_in_order_until_capacity() {
        let mut t = TraceRecorder::new(3);
        for k in 0..5 {
            t.record(SimTime::from_ps(k * 10), &format!("e{k}"));
        }
        assert_eq!(t.entries().len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.entries()[2].label, "e2");
    }

    #[test]
    fn histogram_counts_labels() {
        let mut t = TraceRecorder::new(16);
        for k in 0..6 {
            t.record(SimTime::from_ps(k), if k % 2 == 0 { "vdp" } else { "psum" });
        }
        assert_eq!(
            t.histogram(),
            vec![("psum".to_string(), 3), ("vdp".to_string(), 3)]
        );
    }

    #[test]
    fn inter_arrival_statistics() {
        let mut t = TraceRecorder::new(16);
        for at in [0u64, 10, 30, 60] {
            t.record(SimTime::from_ps(at), "x");
        }
        let (min, mean, max) = t.inter_arrival().unwrap();
        assert_eq!(min, SimTime::from_ps(10));
        assert_eq!(mean, SimTime::from_ps(20));
        assert_eq!(max, SimTime::from_ps(30));
        assert!(TraceRecorder::new(4).inter_arrival().is_none());
    }

    #[test]
    fn traces_an_event_queue_run() {
        let mut trace = TraceRecorder::new(64);
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(5), "layer0");
        q.schedule_at(SimTime::from_ps(9), "layer1");
        let end = q.run(|_, t, label| trace.record(t, label));
        assert_eq!(end, SimTime::from_ps(9));
        assert_eq!(trace.entries().len(), 2);
        assert!(trace.format().contains("layer1"));
    }

    #[test]
    fn filter_selects_by_label() {
        let mut t = TraceRecorder::new(8);
        t.record(SimTime::ZERO, "vdp:0");
        t.record(SimTime::from_ps(1), "psum:0");
        t.record(SimTime::from_ps(2), "vdp:1");
        let vdps: Vec<&TraceEntry> = t.filter(|l| l.starts_with("vdp")).collect();
        assert_eq!(vdps.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TraceRecorder::new(0);
    }
}
