//! Energy, power and area accounting.
//!
//! Table IV of the paper gives each peripheral a power, an area and a
//! latency; accelerator energy is `Σ static power × makespan + Σ dynamic
//! energy per operation`, and area efficiency needs the total die area.
//! The ledger here tracks all three per named component class.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Static + per-operation power/energy/area description of one component
/// class (one Table IV row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Power drawn whenever the accelerator is on, watts.
    pub static_power_w: f64,
    /// Energy consumed per operation, joules.
    pub energy_per_op_j: f64,
    /// Die area per instance, mm².
    pub area_mm2: f64,
    /// Latency per operation.
    pub latency: SimTime,
}

impl ComponentSpec {
    /// A component with only static power (e.g. a laser diode).
    pub fn static_only(static_power_w: f64, area_mm2: f64) -> Self {
        Self {
            static_power_w,
            energy_per_op_j: 0.0,
            area_mm2,
            latency: SimTime::ZERO,
        }
    }

    /// Derives the per-operation dynamic energy of a component specified,
    /// Table IV-style, as an active power plus an operation latency.
    pub fn from_power_and_latency(
        active_power_w: f64,
        static_fraction: f64,
        area_mm2: f64,
        latency: SimTime,
    ) -> Self {
        assert!((0.0..=1.0).contains(&static_fraction), "fraction in [0,1]");
        Self {
            static_power_w: active_power_w * static_fraction,
            energy_per_op_j: active_power_w * (1.0 - static_fraction) * latency.as_secs_f64(),
            area_mm2,
            latency,
        }
    }
}

/// Aggregated usage of one component class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ComponentUsage {
    /// Number of physical instances (for static power and area).
    pub instances: u64,
    /// Dynamic operations performed.
    pub ops: u64,
}

/// Energy/area ledger across component classes.
#[derive(Debug, Clone, Default)]
pub struct EnergyLedger {
    specs: BTreeMap<String, ComponentSpec>,
    usage: BTreeMap<String, ComponentUsage>,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `instances` physical copies of a component class.
    ///
    /// # Panics
    /// Panics if the class was already registered with a different spec.
    pub fn register(&mut self, name: &str, spec: ComponentSpec, instances: u64) {
        if let Some(prev) = self.specs.get(name) {
            assert_eq!(
                *prev, spec,
                "component {name} re-registered with different spec"
            );
        }
        self.specs.insert(name.to_string(), spec);
        self.usage.entry(name.to_string()).or_default().instances += instances;
    }

    /// Records `ops` dynamic operations on a component class.
    ///
    /// # Panics
    /// Panics if the class is unknown.
    pub fn record_ops(&mut self, name: &str, ops: u64) {
        assert!(self.specs.contains_key(name), "unknown component {name}");
        self.usage
            .get_mut(name)
            .expect("invariant: specs and usage are inserted together in register_components")
            .ops += ops;
    }

    /// The spec of a class, if registered.
    pub fn spec(&self, name: &str) -> Option<&ComponentSpec> {
        self.specs.get(name)
    }

    /// The usage of a class, if registered.
    pub fn usage(&self, name: &str) -> Option<&ComponentUsage> {
        self.usage.get(name)
    }

    /// Total static power of all registered instances, watts.
    pub fn static_power_w(&self) -> f64 {
        self.specs
            .iter()
            .map(|(name, spec)| spec.static_power_w * self.usage[name].instances as f64)
            .sum()
    }

    /// Total dynamic energy of all recorded operations, joules.
    pub fn dynamic_energy_j(&self) -> f64 {
        self.specs
            .iter()
            .map(|(name, spec)| spec.energy_per_op_j * self.usage[name].ops as f64)
            .sum()
    }

    /// Total energy over a run of length `makespan`, joules.
    pub fn total_energy_j(&self, makespan: SimTime) -> f64 {
        self.static_power_w() * makespan.as_secs_f64() + self.dynamic_energy_j()
    }

    /// Average power over a run of length `makespan`, watts.
    ///
    /// # Panics
    /// Panics if the makespan is zero.
    pub fn average_power_w(&self, makespan: SimTime) -> f64 {
        assert!(makespan > SimTime::ZERO, "makespan must be positive");
        self.total_energy_j(makespan) / makespan.as_secs_f64()
    }

    /// Total die area of all registered instances, mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.specs
            .iter()
            .map(|(name, spec)| spec.area_mm2 * self.usage[name].instances as f64)
            .sum()
    }

    /// Per-class energy breakdown over a run, sorted by name.
    pub fn breakdown_j(&self, makespan: SimTime) -> Vec<(String, f64)> {
        self.specs
            .iter()
            .map(|(name, spec)| {
                let u = self.usage[name];
                let e = spec.static_power_w * u.instances as f64 * makespan.as_secs_f64()
                    + spec.energy_per_op_j * u.ops as f64;
                (name.clone(), e)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(stat: f64, dyn_j: f64, area: f64) -> ComponentSpec {
        ComponentSpec {
            static_power_w: stat,
            energy_per_op_j: dyn_j,
            area_mm2: area,
            latency: SimTime::from_ns(1),
        }
    }

    #[test]
    fn static_power_scales_with_instances() {
        let mut l = EnergyLedger::new();
        l.register("laser", ComponentSpec::static_only(0.1, 0.0), 176);
        assert!((l.static_power_w() - 17.6).abs() < 1e-9);
    }

    #[test]
    fn dynamic_energy_scales_with_ops() {
        let mut l = EnergyLedger::new();
        l.register("adc", spec(0.0, 2e-12, 0.002), 4);
        l.record_ops("adc", 1000);
        assert!((l.dynamic_energy_j() - 2e-9).abs() < 1e-18);
    }

    #[test]
    fn total_energy_combines_both() {
        let mut l = EnergyLedger::new();
        l.register("x", spec(1.0, 1e-9, 0.5), 2);
        l.record_ops("x", 3);
        let makespan = SimTime::from_secs_f64(1e-3);
        // 2 W × 1 ms + 3 × 1 nJ = 2e-3 + 3e-9.
        let e = l.total_energy_j(makespan);
        assert!((e - (2e-3 + 3e-9)).abs() < 1e-12);
        assert!((l.average_power_w(makespan) - e / 1e-3).abs() < 1e-12);
    }

    #[test]
    fn area_sums_instances() {
        let mut l = EnergyLedger::new();
        l.register("router", spec(0.042, 0.0, 0.151), 16);
        l.register("edram", spec(0.0411, 0.0, 0.166), 4);
        assert!((l.total_area_mm2() - (16.0 * 0.151 + 4.0 * 0.166)).abs() < 1e-9);
    }

    #[test]
    fn register_twice_accumulates_instances() {
        let mut l = EnergyLedger::new();
        let s = spec(0.5, 0.0, 1.0);
        l.register("tile", s, 2);
        l.register("tile", s, 3);
        assert_eq!(l.usage("tile").unwrap().instances, 5);
    }

    #[test]
    fn from_power_and_latency_splits_energy() {
        let s = ComponentSpec::from_power_and_latency(0.03, 0.5, 0.034, SimTime::from_ps(780));
        assert!((s.static_power_w - 0.015).abs() < 1e-12);
        assert!((s.energy_per_op_j - 0.015 * 780e-12).abs() < 1e-18);
    }

    #[test]
    fn breakdown_covers_all_components() {
        let mut l = EnergyLedger::new();
        l.register("a", spec(1.0, 0.0, 0.0), 1);
        l.register("b", spec(0.0, 1e-9, 0.0), 1);
        l.record_ops("b", 2);
        let bd = l.breakdown_j(SimTime::from_secs_f64(1.0));
        assert_eq!(bd.len(), 2);
        let total: f64 = bd.iter().map(|(_, e)| e).sum();
        assert!((total - l.total_energy_j(SimTime::from_secs_f64(1.0))).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown component")]
    fn record_unknown_panics() {
        let mut l = EnergyLedger::new();
        l.record_ops("ghost", 1);
    }

    #[test]
    #[should_panic(expected = "different spec")]
    fn conflicting_reregistration_panics() {
        let mut l = EnergyLedger::new();
        l.register("x", spec(1.0, 0.0, 0.0), 1);
        l.register("x", spec(2.0, 0.0, 0.0), 1);
    }
}
