//! # sconna-sim — transaction-level, event-driven simulator substrate
//!
//! Rust rebuild of the simulation vehicle the SCONNA paper evaluates on
//! (Section VI-B describes a "custom, transaction-level, event-driven
//! python-based simulator"): a deterministic discrete-event queue,
//! picosecond simulated time, an energy/power/area ledger fed from
//! Table IV-style component specs, a mesh NoC, memory models, counters and
//! utilization statistics, plus a fork-join parallel map for parameter
//! sweeps.
//!
//! The accelerator-specific models (SCONNA itself and the analog
//! baselines) live in `sconna-accel`; this crate is architecture-neutral.
//!
//! ```
//! use sconna_sim::{event::EventQueue, time::SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::from_ns(2), "psum");
//! q.schedule_at(SimTime::from_ns(1), "vdp");
//! let (t, what) = q.pop().unwrap();
//! assert_eq!((t, what), (SimTime::from_ns(1), "vdp"));
//! ```

pub mod energy;
pub mod event;
pub mod memory;
pub mod noc;
pub mod parallel;
pub mod stats;
pub mod time;
pub mod trace;

pub use energy::{ComponentSpec, EnergyLedger};
pub use event::EventQueue;
pub use noc::MeshNoc;
pub use stats::{gmean, Counters};
pub use time::SimTime;
