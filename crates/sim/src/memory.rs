//! Memory hierarchy models: global memory, eDRAM scratchpads and output
//! buffers, parameterized Table IV-style (latency + access energy +
//! bandwidth).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A bandwidth/latency memory model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Fixed access latency.
    pub access_latency: SimTime,
    /// Sustained bandwidth, bytes/second.
    pub bandwidth_bps: f64,
    /// Energy per byte transferred, joules.
    pub energy_per_byte_j: f64,
}

impl MemoryModel {
    /// Creates a memory model.
    ///
    /// # Panics
    /// Panics on non-positive bandwidth.
    pub fn new(access_latency: SimTime, bandwidth_bps: f64, energy_per_byte_j: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        Self {
            access_latency,
            bandwidth_bps,
            energy_per_byte_j,
        }
    }

    /// Latency to move `bytes` in one burst.
    pub fn transfer_latency(&self, bytes: usize) -> SimTime {
        self.access_latency + SimTime::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }

    /// Energy to move `bytes`, joules.
    pub fn transfer_energy_j(&self, bytes: usize) -> f64 {
        bytes as f64 * self.energy_per_byte_j
    }

    /// Effective bandwidth achieved by `bytes`-sized bursts (amortizing
    /// the fixed latency), bytes/second.
    pub fn effective_bandwidth(&self, bytes: usize) -> f64 {
        bytes as f64 / self.transfer_latency(bytes).as_secs_f64()
    }
}

/// A double-buffered staging buffer: while one half drains into the
/// compute units, the other fills from memory — the standard latency
/// hiding idiom the weight-stationary dataflow relies on.
#[derive(Debug, Clone, Copy)]
pub struct DoubleBuffer {
    /// Capacity of each half, bytes.
    pub half_capacity_bytes: usize,
}

impl DoubleBuffer {
    /// Effective stall per phase when refilling one half takes
    /// `fill` while compute takes `drain`: zero if the fill hides behind
    /// compute, otherwise the exposed difference.
    pub fn stall(&self, fill: SimTime, drain: SimTime) -> SimTime {
        fill.saturating_sub(drain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edram() -> MemoryModel {
        // Table IV eDRAM: 1.56 ns access; assume 64 GB/s, 1 pJ/B.
        MemoryModel::new(SimTime::from_ps(1_560), 64e9, 1e-12)
    }

    #[test]
    fn latency_has_fixed_and_bandwidth_parts() {
        let m = edram();
        let lat64 = m.transfer_latency(64);
        // 1.56 ns + 64/64e9 s = 1.56 + 1.0 ns.
        assert_eq!(lat64, SimTime::from_ps(2_560));
    }

    #[test]
    fn energy_linear_in_bytes() {
        let m = edram();
        assert!((m.transfer_energy_j(1000) - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn effective_bandwidth_approaches_peak() {
        let m = edram();
        let small = m.effective_bandwidth(64);
        let large = m.effective_bandwidth(1 << 20);
        assert!(small < large);
        assert!(large < 64e9);
        assert!(large > 0.9 * 64e9);
    }

    #[test]
    fn double_buffer_hides_fast_fills() {
        let db = DoubleBuffer {
            half_capacity_bytes: 4096,
        };
        assert_eq!(
            db.stall(SimTime::from_ns(5), SimTime::from_ns(10)),
            SimTime::ZERO
        );
        assert_eq!(
            db.stall(SimTime::from_ns(15), SimTime::from_ns(10)),
            SimTime::from_ns(5)
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = MemoryModel::new(SimTime::ZERO, 0.0, 0.0);
    }
}
