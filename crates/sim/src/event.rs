//! Deterministic discrete-event queue.
//!
//! The heart of a transaction-level, event-driven simulator (the paper's
//! Section VI-B evaluation vehicle): events carry an arbitrary payload and
//! fire in `(time, insertion order)` order, so simulations are exactly
//! reproducible regardless of payload content.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// An event queue with a simulation clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time (the firing time of the last popped
    /// event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Schedules `payload` at an absolute time.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — causality violations are
    /// bugs in the caller's model, not recoverable conditions.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {} < {}",
            at,
            self.now
        );
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.payload))
    }

    /// Runs the queue to exhaustion, handing each event to `handler`
    /// together with a mutable reference to the queue for scheduling
    /// follow-ups. Returns the final simulation time.
    pub fn run(mut self, mut handler: impl FnMut(&mut Self, SimTime, E)) -> SimTime {
        while let Some(s) = self.heap.pop() {
            self.now = s.at;
            self.processed += 1;
            handler(&mut self, s.at, s.payload);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(30), "c");
        q.schedule_at(SimTime::from_ps(10), "a");
        q.schedule_at(SimTime::from_ps(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_ps(30));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(SimTime::from_ps(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(SimTime::from_ps(10), 1);
        q.pop();
        q.schedule_in(SimTime::from_ps(5), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ps(15));
    }

    #[test]
    fn run_allows_cascading_events() {
        // Each event spawns a follow-up until a counter empties — the
        // canonical self-scheduling component pattern.
        let q = {
            let mut q = EventQueue::new();
            q.schedule_at(SimTime::from_ps(1), 5u32);
            q
        };
        let mut fired = Vec::new();
        let end = q.run(|q, t, remaining| {
            fired.push((t.as_ps(), remaining));
            if remaining > 0 {
                q.schedule_in(SimTime::from_ps(2), remaining - 1);
            }
        });
        assert_eq!(fired.len(), 6);
        assert_eq!(end, SimTime::from_ps(11));
        assert_eq!(fired.last(), Some(&(11, 0)));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(10), ());
        q.pop();
        q.schedule_at(SimTime::from_ps(5), ());
    }
}
