//! Deterministic discrete-event queue.
//!
//! The heart of a transaction-level, event-driven simulator (the paper's
//! Section VI-B evaluation vehicle): events carry an arbitrary payload and
//! fire in `(time, insertion order)` order, so simulations are exactly
//! reproducible regardless of payload content.
//!
//! Two implementations share one contract:
//!
//! * [`EventQueue`] — the production queue, a **hierarchical time wheel**
//!   (`LEVELS` levels of `SLOTS` buckets, `LEVEL_BITS` bits of the
//!   picosecond tick per level, covering the full `u64` tick space).
//!   Scheduling is `O(1)`; popping is `O(LEVELS)` amortized — each event
//!   cascades toward level 0 at most once per level. At datacenter scale
//!   (thousands of instances, millions of events) this removes the
//!   `O(log n)` heap churn that dominated large fleets.
//! * [`reference::EventQueue`] — the original binary-heap implementation,
//!   kept as the executable specification and **parity oracle**: the
//!   wheel must reproduce its pop order bit-for-bit, including
//!   same-instant insertion-order tie-breaks (property-tested below over
//!   random schedules, duplicates, interleaved push/pop and far-future
//!   horizons).
//!
//! The canonical tie-break — same-instant events fire in insertion order —
//! falls out of the wheel structurally: a level-0 bucket spans exactly one
//! tick and is a FIFO, cascades preserve relative order, and a bucket is
//! only ever appended to after every earlier-sequenced event that could
//! share it has already been placed there.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Bits of the picosecond tick consumed per wheel level.
const LEVEL_BITS: u32 = 6;
/// Buckets per wheel level (`2^LEVEL_BITS`).
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels — `ceil(64 / LEVEL_BITS)` spans the full `u64` tick space,
/// so any schedulable [`SimTime`] maps to exactly one bucket.
const LEVELS: usize = 64usize.div_ceil(LEVEL_BITS as usize);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

/// One wheel level: 64 FIFO buckets plus an occupancy bitmap (bit `j` set
/// ⇔ `slots[j]` is non-empty) so the next occupied bucket is a
/// `trailing_zeros`, not a scan.
struct Level<E> {
    occupied: u64,
    slots: Vec<VecDeque<Scheduled<E>>>,
}

impl<E> Level<E> {
    fn new() -> Self {
        Self {
            occupied: 0,
            slots: (0..SLOTS).map(|_| VecDeque::new()).collect(),
        }
    }
}

/// An event queue with a simulation clock.
///
/// Hierarchical-time-wheel implementation; see the module docs for the
/// structure and [`reference::EventQueue`] for the heap-based oracle it
/// is property-tested against.
pub struct EventQueue<E> {
    levels: Vec<Level<E>>,
    /// Tick cursor the bucket mapping is anchored to. Equal to
    /// `now.as_ps()` between calls; advances ahead of `now` only
    /// transiently inside [`pop`](Self::pop) while cascading.
    elapsed: u64,
    now: SimTime,
    seq: u64,
    processed: u64,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            elapsed: 0,
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            len: 0,
        }
    }

    /// Current simulation time (the firing time of the last popped
    /// event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Schedules `payload` at an absolute time.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — causality violations are
    /// bugs in the caller's model, not recoverable conditions.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {} < {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.insert(Scheduled { at, seq, payload });
    }

    /// The bucket an event at `tick` belongs to, given the current
    /// `elapsed` anchor: the level is the highest [`LEVEL_BITS`]-wide
    /// digit in which `tick` differs from `elapsed` (level 0 when equal),
    /// the slot is `tick`'s digit at that level.
    fn level_and_slot(&self, tick: u64) -> (usize, usize) {
        let diff = tick ^ self.elapsed;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize
        };
        let slot = ((tick >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    /// Files an already-sequenced event into its bucket (used both by
    /// [`schedule_at`](Self::schedule_at) and by cascades, which must not
    /// re-number events).
    fn insert(&mut self, event: Scheduled<E>) {
        let (level, slot) = self.level_and_slot(event.at.as_ps());
        self.levels[level].occupied |= 1 << slot;
        let bucket = &mut self.levels[level].slots[slot];
        debug_assert!(
            bucket.back().is_none_or(|last| last.seq < event.seq),
            "invariant: buckets must stay insertion-ordered"
        );
        bucket.push_back(event);
    }

    /// The lowest occupied `(level, slot)`, or `None` when empty. Because
    /// no event lies in the simulated past, every occupied bucket is at or
    /// after the cursor, so the first set bit per level is the earliest.
    fn lowest_occupied(&self) -> Option<(usize, usize)> {
        self.levels
            .iter()
            .enumerate()
            .find(|(_, level)| level.occupied != 0)
            .map(|(k, level)| (k, level.occupied.trailing_zeros() as usize))
    }

    /// Firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let (level, slot) = self.lowest_occupied()?;
        let bucket = &self.levels[level].slots[slot];
        if level == 0 {
            // A level-0 bucket spans exactly one tick.
            bucket.front().map(|s| s.at)
        } else {
            // Higher-level buckets hold a time range in insertion order;
            // the earliest is found by scan (peek never re-buckets).
            bucket.iter().map(|s| s.at).min()
        }
    }

    /// Redistributes bucket `slot` of `level` one or more levels down
    /// after advancing the cursor to the bucket's start tick. Preserves
    /// relative (insertion) order, which keeps every FIFO bucket
    /// seq-sorted.
    fn cascade(&mut self, level: usize, slot: usize) {
        let shift = LEVEL_BITS * level as u32;
        let upper = shift + LEVEL_BITS;
        let high = if upper >= 64 {
            0
        } else {
            (self.elapsed >> upper) << upper
        };
        let start = high | ((slot as u64) << shift);
        debug_assert!(start > self.elapsed, "cascade must advance the cursor");
        self.elapsed = start;
        self.levels[level].occupied &= !(1 << slot);
        let drained = std::mem::take(&mut self.levels[level].slots[slot]);
        for event in drained {
            self.insert(event);
        }
    }

    /// Pops the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let (level, slot) = self.lowest_occupied()?;
            if level > 0 {
                self.cascade(level, slot);
                continue;
            }
            let bucket = &mut self.levels[0].slots[slot];
            let event = bucket
                .pop_front()
                .expect("invariant: occupancy bit set on an empty bucket");
            if bucket.is_empty() {
                self.levels[0].occupied &= !(1 << slot);
            }
            self.len -= 1;
            self.elapsed = event.at.as_ps();
            self.now = event.at;
            self.processed += 1;
            return Some((event.at, event.payload));
        }
    }

    /// Runs the queue to exhaustion, handing each event to `handler`
    /// together with a mutable reference to the queue for scheduling
    /// follow-ups. Returns the final simulation time.
    pub fn run(mut self, mut handler: impl FnMut(&mut Self, SimTime, E)) -> SimTime {
        while let Some((at, payload)) = self.pop() {
            handler(&mut self, at, payload);
        }
        self.now
    }
}

pub mod reference {
    //! The original binary-heap event queue, kept as the executable
    //! specification of the `(time, insertion order)` firing contract and
    //! the parity oracle the time-wheel [`EventQueue`](super::EventQueue)
    //! is property-tested against. `O(log n)` per operation — correct at
    //! any scale, but slower than the wheel on large fleets.

    use crate::time::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Scheduled<E> {
        at: SimTime,
        seq: u64,
        payload: E,
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Scheduled<E> {}
    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we want earliest-first.
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    /// The heap-based event queue: same API and firing order as the
    /// production [`EventQueue`](super::EventQueue).
    pub struct EventQueue<E> {
        heap: BinaryHeap<Scheduled<E>>,
        now: SimTime,
        seq: u64,
        processed: u64,
    }

    impl<E> Default for EventQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> EventQueue<E> {
        /// Creates an empty queue at time zero.
        pub fn new() -> Self {
            Self {
                heap: BinaryHeap::new(),
                now: SimTime::ZERO,
                seq: 0,
                processed: 0,
            }
        }

        /// Current simulation time (the firing time of the last popped
        /// event).
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Number of events popped so far.
        pub fn processed(&self) -> u64 {
            self.processed
        }

        /// Number of pending events.
        pub fn pending(&self) -> usize {
            self.heap.len()
        }

        /// True when no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Schedules `payload` to fire `delay` after the current time.
        pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
            self.schedule_at(self.now + delay, payload);
        }

        /// Schedules `payload` at an absolute time.
        ///
        /// # Panics
        /// Panics if `at` is in the simulated past — causality violations
        /// are bugs in the caller's model, not recoverable conditions.
        pub fn schedule_at(&mut self, at: SimTime, payload: E) {
            assert!(
                at >= self.now,
                "cannot schedule into the past: {} < {}",
                at,
                self.now
            );
            self.heap.push(Scheduled {
                at,
                seq: self.seq,
                payload,
            });
            self.seq += 1;
        }

        /// Firing time of the next event without popping it.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|s| s.at)
        }

        /// Pops the next event, advancing the clock to its firing time.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            let s = self.heap.pop()?;
            self.now = s.at;
            self.processed += 1;
            Some((s.at, s.payload))
        }

        /// Runs the queue to exhaustion, handing each event to `handler`
        /// together with a mutable reference to the queue for scheduling
        /// follow-ups. Returns the final simulation time.
        pub fn run(mut self, mut handler: impl FnMut(&mut Self, SimTime, E)) -> SimTime {
            while let Some(s) = self.heap.pop() {
                self.now = s.at;
                self.processed += 1;
                handler(&mut self, s.at, s.payload);
            }
            self.now
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(30), "c");
        q.schedule_at(SimTime::from_ps(10), "a");
        q.schedule_at(SimTime::from_ps(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_ps(30));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(SimTime::from_ps(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(SimTime::from_ps(10), 1);
        q.pop();
        q.schedule_in(SimTime::from_ps(5), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ps(15));
    }

    #[test]
    fn run_allows_cascading_events() {
        // Each event spawns a follow-up until a counter empties — the
        // canonical self-scheduling component pattern.
        let q = {
            let mut q = EventQueue::new();
            q.schedule_at(SimTime::from_ps(1), 5u32);
            q
        };
        let mut fired = Vec::new();
        let end = q.run(|q, t, remaining| {
            fired.push((t.as_ps(), remaining));
            if remaining > 0 {
                q.schedule_in(SimTime::from_ps(2), remaining - 1);
            }
        });
        assert_eq!(fired.len(), 6);
        assert_eq!(end, SimTime::from_ps(11));
        assert_eq!(fired.last(), Some(&(11, 0)));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(10), ());
        q.pop();
        q.schedule_at(SimTime::from_ps(5), ());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn reference_scheduling_into_past_panics() {
        let mut q = reference::EventQueue::new();
        q.schedule_at(SimTime::from_ps(10), ());
        q.pop();
        q.schedule_at(SimTime::from_ps(5), ());
    }

    #[test]
    fn reference_fires_in_time_then_insertion_order() {
        let mut q = reference::EventQueue::new();
        q.schedule_at(SimTime::from_ps(30), 0);
        q.schedule_at(SimTime::from_ps(10), 1);
        q.schedule_at(SimTime::from_ps(10), 2);
        q.schedule_at(SimTime::from_ps(20), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
        assert_eq!(q.processed(), 4);
    }

    #[test]
    fn far_future_horizons_cross_every_wheel_level() {
        // One event per wheel level, up to the top of the u64 tick space;
        // the wheel must cascade each down without disturbing order.
        let mut q = EventQueue::new();
        let mut r = reference::EventQueue::new();
        let mut times: Vec<u64> = (0..LEVELS as u32)
            .map(|k| 1u64.checked_shl(LEVEL_BITS * k).unwrap_or(u64::MAX))
            .collect();
        times.push(u64::MAX);
        times.push(u64::MAX); // duplicate at the horizon: tie-break check
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_ps(t), i);
            r.schedule_at(SimTime::from_ps(t), i);
        }
        loop {
            let (a, b) = (q.pop(), r.pop());
            assert_eq!(a, b, "wheel diverged from reference");
            if a.is_none() {
                break;
            }
        }
        assert_eq!(q.now(), SimTime::from_ps(u64::MAX));
    }

    #[test]
    fn pending_and_peek_agree_with_reference_under_interleaving() {
        // Deterministic xorshift-style mix: push bursts at scattered
        // times, then drain a few, repeatedly — both queues must agree on
        // every observable at every step.
        let mut q = EventQueue::new();
        let mut r = reference::EventQueue::new();
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut label = 0u32;
        for _round in 0..50 {
            for _push in 0..7 {
                let horizon = 1u64 << (next() % 40);
                let at = q.now() + SimTime::from_ps(next() % horizon);
                q.schedule_at(at, label);
                r.schedule_at(at, label);
                label += 1;
            }
            for _pop in 0..5 {
                assert_eq!(q.peek_time(), r.peek_time());
                assert_eq!(q.pop(), r.pop());
                assert_eq!(q.now(), r.now());
                assert_eq!(q.pending(), r.pending());
            }
        }
        while !q.is_empty() {
            assert_eq!(q.pop(), r.pop());
        }
        assert_eq!(r.pop(), None);
        assert_eq!(q.processed(), r.processed());
    }

    proptest! {
        /// The tentpole contract: over random schedules — duplicate
        /// times, interleaved push/pop, far-future horizons — the wheel
        /// pops the exact event sequence of the heap reference,
        /// including same-instant insertion-order tie-breaks.
        #[test]
        fn wheel_matches_heap_reference(
            ops in proptest::collection::vec((0u32..8, 0u64..64, 0u32..16), 1..200)
        ) {
            let mut q = EventQueue::new();
            let mut r = reference::EventQueue::new();
            let mut label = 0u64;
            for (kind, raw, dup) in ops {
                if kind == 0 {
                    // Drain one event (no-op on empty).
                    prop_assert_eq!(q.peek_time(), r.peek_time());
                    prop_assert_eq!(q.pop(), r.pop());
                } else {
                    // Schedule a burst of `dup + 1` events at one instant
                    // whose horizon spans from now to deep wheel levels.
                    let delay = raw.wrapping_mul(raw).wrapping_mul(1 + raw % 977)
                        % (1 << (raw % 48));
                    let at = q.now() + SimTime::from_ps(delay);
                    for _ in 0..=dup {
                        q.schedule_at(at, label);
                        r.schedule_at(at, label);
                        label += 1;
                    }
                }
                prop_assert_eq!(q.pending(), r.pending());
                prop_assert_eq!(q.now(), r.now());
            }
            loop {
                let (a, b) = (q.pop(), r.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(q.processed(), r.processed());
        }
    }
}
