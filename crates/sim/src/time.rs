//! Simulated time.
//!
//! All latencies in the accelerator models are derived from physical
//! quantities (bit periods, Table IV peripheral latencies, NoC cycles), so
//! time is carried as integer **picoseconds** — fine enough to represent a
//! 33.3 ps optical bit slot exactly enough, coarse enough that a u64 spans
//! half a year of simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Constructs from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Constructs from a (non-negative, finite) floating-point count of
    /// seconds, rounding to the nearest picosecond.
    ///
    /// # Panics
    /// Panics if `s` is negative, NaN or too large for the range.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        let ps = s * 1e12;
        assert!(ps <= u64::MAX as f64, "duration {s} s overflows SimTime");
        SimTime(ps.round() as u64)
    }

    /// Picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds as f64 (for rate computations such as FPS).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Saturating difference.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Element-wise maximum.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect(
            "invariant: simulated time must not overflow u64 picoseconds (documented panic)",
        ))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect(
            "invariant: simulated time differences must not underflow below zero (documented panic)",
        ))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3} s", ps as f64 / 1e12)
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3} ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3} µs", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3} ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps} ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_ns(3).as_ps(), 3_000);
        assert_eq!(SimTime::from_secs_f64(1e-9).as_ps(), 1_000);
        assert!((SimTime::from_ps(2_500).as_secs_f64() - 2.5e-9).abs() < 1e-21);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ps(100);
        let b = SimTime::from_ps(40);
        assert_eq!((a + b).as_ps(), 140);
        assert_eq!((a - b).as_ps(), 60);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ps(), 140);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_ps(500).to_string(), "500 ps");
        assert_eq!(SimTime::from_ps(8_533).to_string(), "8.533 ns");
        assert_eq!(SimTime::from_ns(1_500_000).to_string(), "1.500 ms");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_ps(1) - SimTime::from_ps(2);
    }
}
