//! Run statistics: counters and utilization tracking for simulation
//! reports.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Named monotonic counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.values.entry(name.to_string()).or_default() += n;
    }

    /// Increments a counter by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

/// Busy-time tracker for one resource: accumulates busy intervals and
/// reports utilization against a makespan.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Utilization {
    busy: SimTime,
}

impl Utilization {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy interval.
    pub fn add_busy(&mut self, duration: SimTime) {
        self.busy += duration;
    }

    /// Total busy time.
    pub fn busy(&self) -> SimTime {
        self.busy
    }

    /// Utilization in `[0, 1]` against a makespan (capped at 1 for
    /// pipelined resources that overlap work).
    ///
    /// # Panics
    /// Panics if the makespan is zero.
    pub fn ratio(&self, makespan: SimTime) -> f64 {
        assert!(makespan > SimTime::ZERO, "makespan must be positive");
        (self.busy.as_secs_f64() / makespan.as_secs_f64()).min(1.0)
    }
}

/// Collected latency samples with deterministic percentile extraction
/// (nearest-rank on the sorted samples), for serving-simulation reports.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencySamples {
    samples: Vec<SimTime>,
}

/// Fixed summary of a latency distribution: the percentiles a serving
/// report quotes plus mean and max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Median latency.
    pub p50: SimTime,
    /// 95th-percentile latency.
    pub p95: SimTime,
    /// 99th-percentile latency.
    pub p99: SimTime,
    /// Mean latency (rounded to the nearest picosecond).
    pub mean: SimTime,
    /// Worst-case latency.
    pub max: SimTime,
}

impl LatencySamples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        self.samples.push(latency);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Nearest-rank percentile: the smallest sample such that at least
    /// `p` percent of samples are at or below it. Integer arithmetic on
    /// picoseconds, so bit-identical across platforms and thread counts.
    ///
    /// # Panics
    /// Panics if no samples were recorded or `p` is outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> SimTime {
        assert!(!self.samples.is_empty(), "percentile of empty sample set");
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        nearest_rank(&sorted, p)
    }

    /// Mean latency, rounded to the nearest picosecond.
    ///
    /// # Panics
    /// Panics if no samples were recorded.
    pub fn mean(&self) -> SimTime {
        assert!(!self.samples.is_empty(), "mean of empty sample set");
        rounded_mean(&self.samples)
    }

    /// Worst-case latency.
    ///
    /// # Panics
    /// Panics if no samples were recorded.
    pub fn max(&self) -> SimTime {
        assert!(!self.samples.is_empty(), "max of empty sample set");
        self.samples
            .iter()
            .copied()
            .max()
            .expect("invariant: non-empty asserted above")
    }

    /// The full report summary (one sort for all percentiles).
    ///
    /// # Panics
    /// Panics if no samples were recorded.
    pub fn summary(&self) -> LatencySummary {
        assert!(!self.samples.is_empty(), "summary of empty sample set");
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        LatencySummary {
            count: sorted.len(),
            p50: nearest_rank(&sorted, 50.0),
            p95: nearest_rank(&sorted, 95.0),
            p99: nearest_rank(&sorted, 99.0),
            mean: rounded_mean(&sorted),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Queue-depth time series: `(time, depth)` recorded at every queue-length
/// change of a bounded serving queue, for overload analysis. The depth
/// between two samples is a step function — the depth recorded by the
/// earlier sample holds until the later one.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueDepthSamples {
    samples: Vec<(SimTime, usize)>,
}

impl QueueDepthSamples {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the queue depth after a change at `at`. Several changes at
    /// the same instant may all be recorded; the last one is the depth
    /// the queue settles at.
    ///
    /// # Panics
    /// Panics if `at` precedes the previous sample (the series is a
    /// simulation trace, so time never rewinds).
    pub fn record(&mut self, at: SimTime, depth: usize) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(at >= last, "queue-depth samples must be time-ordered");
        }
        self.samples.push((at, depth));
    }

    /// Depth recorded by the most recent sample (`None` before the first).
    pub fn last_depth(&self) -> Option<usize> {
        self.samples.last().map(|&(_, d)| d)
    }

    /// Time of the most recent sample (`None` before the first). Shed
    /// events can outlive the last completion, so a series may extend
    /// past a serving report's makespan — integrate to
    /// `makespan.max(last_time())`.
    pub fn last_time(&self) -> Option<SimTime> {
        self.samples.last().map(|&(t, _)| t)
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw `(time, depth)` series.
    pub fn samples(&self) -> &[(SimTime, usize)] {
        &self.samples
    }

    /// Largest depth ever recorded (0 for an empty series).
    pub fn max_depth(&self) -> usize {
        self.samples.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }

    /// Time-weighted mean depth over `[0, end]`: the step function is 0
    /// before the first sample and holds each sample's depth until the
    /// next. Integer picosecond arithmetic, so bit-identical across
    /// platforms.
    ///
    /// # Panics
    /// Panics if `end` is zero or precedes the last sample.
    pub fn mean_depth(&self, end: SimTime) -> f64 {
        assert!(end > SimTime::ZERO, "mean depth over an empty interval");
        if let Some(&(last, _)) = self.samples.last() {
            assert!(end >= last, "end precedes the last sample");
        }
        let mut weighted: u128 = 0;
        for (i, &(at, depth)) in self.samples.iter().enumerate() {
            let until = self.samples.get(i + 1).map_or(end, |&(next, _)| next);
            weighted += depth as u128 * (until - at).as_ps() as u128;
        }
        weighted as f64 / end.as_ps() as f64
    }
}

/// Windowed-goodput time series: responses binned into fixed simulated
/// windows, the availability view of a serving run. Window `i` covers
/// `[i·window, (i+1)·window)`; a fleet collapse shows up as a run of
/// empty windows and a supervised recovery as the bins refilling — the
/// healing transient the scalar goodput figure averages away.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoodputSamples {
    window: SimTime,
    counts: Vec<u64>,
}

impl GoodputSamples {
    /// Creates an empty series with the given window.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: SimTime) -> Self {
        assert!(window > SimTime::ZERO, "goodput window must be positive");
        Self {
            window,
            counts: Vec::new(),
        }
    }

    fn bucket(&self, at: SimTime) -> usize {
        (at.as_ps() / self.window.as_ps()) as usize
    }

    /// Records `n` responses at `at`, growing the series with empty
    /// windows as needed.
    pub fn record(&mut self, at: SimTime, n: u64) {
        let idx = self.bucket(at);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// Extends the series (with empty windows) so it covers `at` without
    /// recording any response — called at fault and supervisor-restart
    /// boundaries so an outage at the tail of a run is visible as
    /// trailing zero windows rather than a truncated series.
    pub fn note(&mut self, at: SimTime) {
        let idx = self.bucket(at);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
    }

    /// The window every bin covers.
    pub fn window(&self) -> SimTime {
        self.window
    }

    /// Responses per window, window order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of windows the series covers.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True before anything was recorded or noted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Responses per second in each window.
    pub fn rates_fps(&self) -> Vec<f64> {
        let secs = self.window.as_secs_f64();
        self.counts.iter().map(|&c| c as f64 / secs).collect()
    }

    /// The emptiest window's response rate — the depth of the worst
    /// outage the series saw (0 when some window served nothing).
    pub fn min_rate_fps(&self) -> f64 {
        let secs = self.window.as_secs_f64();
        self.counts
            .iter()
            .map(|&c| c as f64 / secs)
            .fold(f64::INFINITY, f64::min)
    }

    /// Total responses recorded across every window.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Nearest-rank lookup on an already-sorted, non-empty sample slice.
fn nearest_rank(sorted: &[SimTime], p: f64) -> SimTime {
    assert!(
        p > 0.0 && p <= 100.0,
        "percentile must be in (0, 100], got {p}"
    );
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Mean of a non-empty sample slice, rounded to the nearest picosecond.
fn rounded_mean(samples: &[SimTime]) -> SimTime {
    let total: u128 = samples.iter().map(|s| s.as_ps() as u128).sum();
    let n = samples.len() as u128;
    SimTime::from_ps(((total + n / 2) / n) as u64)
}

/// Geometric mean of a slice of positive values — the aggregation the
/// paper uses across CNNs ("on gmean across the CNNs").
///
/// # Panics
/// Panics if the slice is empty or contains a non-positive value.
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "gmean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "gmean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.bump("vdp_ops");
        c.add("vdp_ops", 9);
        c.add("psum", 4);
        assert_eq!(c.get("vdp_ops"), 10);
        assert_eq!(c.get("psum"), 4);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters::new();
        a.add("x", 1);
        let mut b = Counters::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn counters_iterate_sorted() {
        let mut c = Counters::new();
        c.add("zeta", 1);
        c.add("alpha", 1);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn utilization_ratio() {
        let mut u = Utilization::new();
        u.add_busy(SimTime::from_ns(30));
        u.add_busy(SimTime::from_ns(20));
        assert!((u.ratio(SimTime::from_ns(100)) - 0.5).abs() < 1e-12);
        // Overlapping (pipelined) busy time caps at 1.
        u.add_busy(SimTime::from_ns(100));
        assert_eq!(u.ratio(SimTime::from_ns(100)), 1.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut l = LatencySamples::new();
        for ps in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            l.record(SimTime::from_ps(ps));
        }
        assert_eq!(l.percentile(50.0), SimTime::from_ps(50));
        assert_eq!(l.percentile(95.0), SimTime::from_ps(100));
        assert_eq!(l.percentile(99.0), SimTime::from_ps(100));
        assert_eq!(l.percentile(10.0), SimTime::from_ps(10));
        assert_eq!(l.percentile(100.0), SimTime::from_ps(100));
        assert_eq!(l.mean(), SimTime::from_ps(55));
        assert_eq!(l.max(), SimTime::from_ps(100));
    }

    #[test]
    fn percentile_is_insertion_order_invariant() {
        let a: Vec<u64> = (1..=97).collect();
        let mut fwd = LatencySamples::new();
        let mut rev = LatencySamples::new();
        for &ps in &a {
            fwd.record(SimTime::from_ps(ps));
        }
        for &ps in a.iter().rev() {
            rev.record(SimTime::from_ps(ps));
        }
        for p in [1.0, 33.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(fwd.percentile(p), rev.percentile(p), "p{p}");
        }
        assert_eq!(fwd.summary(), rev.summary());
    }

    #[test]
    fn summary_matches_individual_queries() {
        let mut l = LatencySamples::new();
        for k in 0..1000u64 {
            l.record(SimTime::from_ps((k * 7919) % 100_000));
        }
        let s = l.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, l.percentile(50.0));
        assert_eq!(s.p95, l.percentile(95.0));
        assert_eq!(s.p99, l.percentile(99.0));
        assert_eq!(s.mean, l.mean());
        assert_eq!(s.max, l.max());
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn single_sample_summary() {
        let mut l = LatencySamples::new();
        l.record(SimTime::from_ns(3));
        let s = l.summary();
        assert_eq!(s.p50, SimTime::from_ns(3));
        assert_eq!(s.p99, SimTime::from_ns(3));
        assert_eq!(s.mean, SimTime::from_ns(3));
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn percentile_of_empty_panics() {
        let _ = LatencySamples::new().percentile(50.0);
    }

    /// Sort-free reference for the nearest-rank definition: the smallest
    /// sample such that at least `p` percent of samples are at or below
    /// it. Independent of the implementation's ceil-of-rank arithmetic.
    fn reference_percentile(samples: &[SimTime], p: f64) -> SimTime {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = samples.len() as f64;
        for &candidate in &sorted {
            let at_or_below = sorted.iter().filter(|&&s| s <= candidate).count() as f64;
            if at_or_below * 100.0 >= p * n {
                return candidate;
            }
        }
        sorted[sorted.len() - 1]
    }

    proptest! {
        /// `percentile` matches the "smallest sample covering p percent"
        /// reference for random sample sets at the report percentiles and
        /// at arbitrary p — including the single-sample case, where every
        /// percentile is that sample.
        #[test]
        fn prop_percentile_matches_sort_based_reference(
            samples_ps in proptest::collection::vec(0u64..1_000_000, 1..64),
            p_extra in 1u64..=1000,
        ) {
            let mut l = LatencySamples::new();
            for &ps in &samples_ps {
                l.record(SimTime::from_ps(ps));
            }
            let times: Vec<SimTime> =
                samples_ps.iter().map(|&ps| SimTime::from_ps(ps)).collect();
            // The percentiles the serving reports quote, plus a random p
            // in (0, 100].
            let ps_to_check = [50.0, 95.0, 99.0, 100.0, p_extra as f64 / 10.0];
            for &p in &ps_to_check {
                prop_assert_eq!(
                    l.percentile(p),
                    reference_percentile(&times, p),
                    "p = {} over {} samples", p, times.len()
                );
            }
            if times.len() == 1 {
                prop_assert_eq!(l.percentile(50.0), times[0]);
                prop_assert_eq!(l.percentile(100.0), times[0]);
            }
            // Summary and individual queries agree.
            let s = l.summary();
            prop_assert_eq!(s.p50, l.percentile(50.0));
            prop_assert_eq!(s.p95, l.percentile(95.0));
            prop_assert_eq!(s.p99, l.percentile(99.0));
            prop_assert_eq!(s.max, l.max());
        }
    }

    #[test]
    #[should_panic(expected = "percentile must be in (0, 100]")]
    fn percentile_zero_panics() {
        // p = 0 has no nearest-rank meaning (rank 0 names no sample); the
        // minimum is percentile(ε) for any ε > 0.
        let mut l = LatencySamples::new();
        l.record(SimTime::from_ps(1));
        let _ = l.percentile(0.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in (0, 100]")]
    fn percentile_above_hundred_panics() {
        let mut l = LatencySamples::new();
        l.record(SimTime::from_ps(1));
        let _ = l.percentile(100.1);
    }

    #[test]
    fn queue_depth_series_records_steps() {
        let mut q = QueueDepthSamples::new();
        assert!(q.is_empty());
        assert_eq!(q.max_depth(), 0);
        assert_eq!(q.last_depth(), None);
        q.record(SimTime::from_ps(10), 1);
        q.record(SimTime::from_ps(20), 3);
        q.record(SimTime::from_ps(20), 2); // same-instant settle
        q.record(SimTime::from_ps(60), 0);
        assert_eq!(q.len(), 4);
        assert_eq!(q.max_depth(), 3);
        assert_eq!(q.last_depth(), Some(0));
        // Depth 0 for 10 ps, 1 for 10 ps, 2 for 40 ps, 0 for 40 ps:
        // mean over [0, 100] = (1·10 + 2·40) / 100 = 0.9.
        assert!((q.mean_depth(SimTime::from_ps(100)) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn queue_depth_mean_of_empty_series_is_zero() {
        let q = QueueDepthSamples::new();
        assert_eq!(q.mean_depth(SimTime::from_ps(50)), 0.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn queue_depth_rejects_time_rewind() {
        let mut q = QueueDepthSamples::new();
        q.record(SimTime::from_ps(10), 1);
        q.record(SimTime::from_ps(5), 2);
    }

    #[test]
    fn goodput_series_bins_by_window() {
        let mut g = GoodputSamples::new(SimTime::from_ns(10));
        assert!(g.is_empty());
        g.record(SimTime::from_ns(1), 2); // window 0
        g.record(SimTime::from_ns(9), 1); // window 0
        g.record(SimTime::from_ns(10), 4); // window 1 (half-open bins)
        g.record(SimTime::from_ns(35), 1); // window 3, windows 2 backfilled empty
        assert_eq!(g.counts(), &[3, 4, 0, 1]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.total(), 8);
        let rates = g.rates_fps();
        // 3 responses in a 10 ns window = 3e8 responses/s.
        assert!((rates[0] - 3.0e8).abs() < 1e-3);
        assert_eq!(g.min_rate_fps(), 0.0);
    }

    #[test]
    fn goodput_note_extends_without_recording() {
        let mut g = GoodputSamples::new(SimTime::from_ns(10));
        g.record(SimTime::from_ns(5), 1);
        // An outage at the tail: nothing served, but the series must
        // show the empty windows rather than ending at the last response.
        g.note(SimTime::from_ns(42));
        assert_eq!(g.counts(), &[1, 0, 0, 0, 0]);
        assert_eq!(g.total(), 1);
        // note() never shrinks the series.
        g.note(SimTime::from_ns(3));
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn goodput_order_of_records_is_immaterial() {
        let w = SimTime::from_ns(7);
        let mut fwd = GoodputSamples::new(w);
        let mut rev = GoodputSamples::new(w);
        let events: Vec<(u64, u64)> = (0..50).map(|k| ((k * 977) % 300, k % 3 + 1)).collect();
        for &(ns, n) in &events {
            fwd.record(SimTime::from_ns(ns), n);
        }
        for &(ns, n) in events.iter().rev() {
            rev.record(SimTime::from_ns(ns), n);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    #[should_panic(expected = "goodput window must be positive")]
    fn goodput_rejects_zero_window() {
        let _ = GoodputSamples::new(SimTime::ZERO);
    }

    #[test]
    fn gmean_matches_hand_calc() {
        assert!((gmean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[1.0, 0.0]);
    }
}
