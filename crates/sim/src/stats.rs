//! Run statistics: counters and utilization tracking for simulation
//! reports.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Named monotonic counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.values.entry(name.to_string()).or_default() += n;
    }

    /// Increments a counter by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

/// Busy-time tracker for one resource: accumulates busy intervals and
/// reports utilization against a makespan.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Utilization {
    busy: SimTime,
}

impl Utilization {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy interval.
    pub fn add_busy(&mut self, duration: SimTime) {
        self.busy += duration;
    }

    /// Total busy time.
    pub fn busy(&self) -> SimTime {
        self.busy
    }

    /// Utilization in `[0, 1]` against a makespan (capped at 1 for
    /// pipelined resources that overlap work).
    ///
    /// # Panics
    /// Panics if the makespan is zero.
    pub fn ratio(&self, makespan: SimTime) -> f64 {
        assert!(makespan > SimTime::ZERO, "makespan must be positive");
        (self.busy.as_secs_f64() / makespan.as_secs_f64()).min(1.0)
    }
}

/// Geometric mean of a slice of positive values — the aggregation the
/// paper uses across CNNs ("on gmean across the CNNs").
///
/// # Panics
/// Panics if the slice is empty or contains a non-positive value.
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "gmean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "gmean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.bump("vdp_ops");
        c.add("vdp_ops", 9);
        c.add("psum", 4);
        assert_eq!(c.get("vdp_ops"), 10);
        assert_eq!(c.get("psum"), 4);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters::new();
        a.add("x", 1);
        let mut b = Counters::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn counters_iterate_sorted() {
        let mut c = Counters::new();
        c.add("zeta", 1);
        c.add("alpha", 1);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn utilization_ratio() {
        let mut u = Utilization::new();
        u.add_busy(SimTime::from_ns(30));
        u.add_busy(SimTime::from_ns(20));
        assert!((u.ratio(SimTime::from_ns(100)) - 0.5).abs() < 1e-12);
        // Overlapping (pipelined) busy time caps at 1.
        u.add_busy(SimTime::from_ns(100));
        assert_eq!(u.ratio(SimTime::from_ns(100)), 1.0);
    }

    #[test]
    fn gmean_matches_hand_calc() {
        assert!((gmean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[1.0, 0.0]);
    }
}
