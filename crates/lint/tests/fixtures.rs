//! Fixture self-test: every rule is proven to fire on its seeded
//! violation file (with exact lines), the lexer edge-case fixture is
//! proven silent, and the suppression fixture exercises the whole
//! allow/bad-suppression/unused-allow surface.
//!
//! Fixtures live under `fixtures/` (excluded from the workspace walk —
//! they contain violations on purpose) and are linted under pseudo
//! workspace paths chosen to put each rule in scope.

use sconna_lint::engine::lint_source;
use sconna_lint::Finding;

/// A pseudo-path where every rule is in scope (library source of a
/// determinism-sensitive crate).
const SCOPED: &str = "crates/accel/src/fixture.rs";

fn lines_of(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn locked_rng_fixture_fires() {
    let findings = lint_source(SCOPED, include_str!("../fixtures/locked_rng.rs"));
    // Field form, RwLock form, return-type form, constructor form.
    assert_eq!(lines_of(&findings, "no-locked-rng"), vec![8, 12, 15, 16]);
    assert_eq!(findings.len(), 4, "no other rule should fire: {findings:?}");
}

#[test]
fn locked_rng_fixture_fires_in_the_self_healing_modules() {
    // The failure-process and supervisor random streams must stay
    // counter-keyed: a locked RNG smuggled into either file would break
    // order/thread independence of the chaos draws, so both new serve
    // files are pinned inside `no-locked-rng` scope.
    for rel in [
        "crates/accel/src/serve/failure.rs",
        "crates/accel/src/serve/supervisor.rs",
    ] {
        let findings = lint_source(rel, include_str!("../fixtures/locked_rng.rs"));
        assert_eq!(
            lines_of(&findings, "no-locked-rng"),
            vec![8, 12, 15, 16],
            "{rel} fell out of the locked-rng scope"
        );
        assert_eq!(findings.len(), 4, "{rel}: {findings:?}");
    }
}

#[test]
fn locked_rng_fixture_is_exempt_in_the_legacy_bench_baseline() {
    let findings = lint_source(
        "crates/bench/src/bin/inference.rs",
        include_str!("../fixtures/locked_rng.rs"),
    );
    assert!(
        findings.is_empty(),
        "legacy baseline is carved out: {findings:?}"
    );
}

#[test]
fn wallclock_fixture_fires() {
    let findings = lint_source(SCOPED, include_str!("../fixtures/wallclock.rs"));
    // `SystemTime` in the use-decl, `Instant::now`, `SystemTime::now`.
    assert_eq!(lines_of(&findings, "no-wallclock"), vec![4, 7, 8]);
    assert_eq!(findings.len(), 3);
}

#[test]
fn wallclock_fixture_is_exempt_in_bench_and_criterion() {
    for rel in [
        "crates/bench/src/bin/serving.rs",
        "crates/compat/criterion/src/lib.rs",
    ] {
        let findings = lint_source(rel, include_str!("../fixtures/wallclock.rs"));
        assert!(findings.is_empty(), "{rel} is carved out: {findings:?}");
    }
}

#[test]
fn unordered_fixture_fires() {
    let findings = lint_source(SCOPED, include_str!("../fixtures/unordered.rs"));
    // The use-decl plus both mentions on the declaration line.
    assert_eq!(
        lines_of(&findings, "no-unordered-report-iteration"),
        vec![5, 8, 8]
    );
    assert_eq!(findings.len(), 3);
}

#[test]
fn fleet_unordered_fixture_fires_throughout_the_serve_submodule() {
    // The serve.rs -> serve/{mod,config,fault,fleet,report}.rs split must
    // not carve any fleet file out of `no-unordered-report-iteration`
    // scope: the rule keys on the `crates/accel/src/` prefix, and this
    // pins it against a future exact-path scoping regression.
    for rel in [
        "crates/accel/src/serve/mod.rs",
        "crates/accel/src/serve/config.rs",
        "crates/accel/src/serve/failure.rs",
        "crates/accel/src/serve/fault.rs",
        "crates/accel/src/serve/fleet.rs",
        "crates/accel/src/serve/report.rs",
        "crates/accel/src/serve/supervisor.rs",
        "crates/accel/src/serve/autoscale.rs",
    ] {
        let findings = lint_source(rel, include_str!("../fixtures/fleet_unordered.rs"));
        // The use-decl plus both mentions on the declaration line.
        assert_eq!(
            lines_of(&findings, "no-unordered-report-iteration"),
            vec![6, 13, 13],
            "{rel} fell out of the unordered-iteration scope"
        );
        assert_eq!(findings.len(), 3, "{rel}: {findings:?}");
    }
}

#[test]
fn autoscaler_and_event_core_stay_determinism_scoped() {
    // The bucketed event core orders every event in the simulator and
    // the autoscaler's decisions must be pure functions of simulated
    // time — these are exactly the files whose determinism the
    // fleet-scale replay claims rest on. Pin both inside `no-wallclock`
    // and `no-unordered-report-iteration` scope so neither can fall out
    // via a path-scoping regression.
    for rel in [
        "crates/accel/src/serve/autoscale.rs",
        "crates/sim/src/event.rs",
    ] {
        let findings = lint_source(rel, include_str!("../fixtures/wallclock.rs"));
        assert_eq!(
            lines_of(&findings, "no-wallclock"),
            vec![4, 7, 8],
            "{rel} fell out of the wallclock scope"
        );
        let findings = lint_source(rel, include_str!("../fixtures/unordered.rs"));
        assert_eq!(
            lines_of(&findings, "no-unordered-report-iteration"),
            vec![5, 8, 8],
            "{rel} fell out of the unordered-iteration scope"
        );
    }
}

#[test]
fn tenant_unordered_fixture_fires_on_the_per_tenant_report_path() {
    // PR 10 threads per-tenant accounting through config -> fleet ->
    // report: a `HashMap` keyed by tenant anywhere on that path would
    // leak its randomized iteration order into the order of the
    // `TenantUsage` rows. The rule keys on the `crates/accel/src/`
    // prefix; this pins every file that builds or carries per-tenant
    // report state inside that scope.
    for rel in [
        "crates/accel/src/serve/config.rs",
        "crates/accel/src/serve/fleet.rs",
        "crates/accel/src/serve/report.rs",
    ] {
        let findings = lint_source(rel, include_str!("../fixtures/tenant_unordered.rs"));
        // The use-decl plus both mentions on the declaration line.
        assert_eq!(
            lines_of(&findings, "no-unordered-report-iteration"),
            vec![9, 16, 16],
            "{rel} fell out of the unordered-iteration scope"
        );
        assert_eq!(findings.len(), 3, "{rel}: {findings:?}");
    }
}

#[test]
fn tenant_unordered_fixture_is_exempt_in_the_tenant_bench() {
    // The bench bin assembles BENCH_tenants.json rows itself; bins are
    // not report-library code and stay carved out.
    let findings = lint_source(
        "crates/bench/src/bin/tenant_sweep.rs",
        include_str!("../fixtures/tenant_unordered.rs"),
    );
    assert!(
        findings.is_empty(),
        "bench bins are carved out: {findings:?}"
    );
}

#[test]
fn fleet_unordered_fixture_is_exempt_in_the_scenario_harness() {
    // tests/ may use unordered containers — only library report code is
    // determinism-scoped.
    let findings = lint_source(
        "tests/scenarios.rs",
        include_str!("../fixtures/fleet_unordered.rs"),
    );
    assert!(findings.is_empty(), "tests are carved out: {findings:?}");
}

#[test]
fn unordered_fixture_is_exempt_outside_report_crates() {
    let findings = lint_source(
        "crates/tensor/src/fixture.rs",
        include_str!("../fixtures/unordered.rs"),
    );
    assert!(
        findings.is_empty(),
        "tensor is not report-scoped: {findings:?}"
    );
}

#[test]
fn unwrap_fixture_fires() {
    let findings = lint_source(SCOPED, include_str!("../fixtures/unwrap_in_lib.rs"));
    // Bare unwrap + invariant-less expect; the documented expect, the
    // unwrap_or forms and the #[cfg(test)] module stay quiet.
    assert_eq!(lines_of(&findings, "no-unwrap-in-lib"), vec![6, 10]);
    assert_eq!(findings.len(), 2);
}

#[test]
fn unwrap_fixture_is_exempt_in_bins_tests_and_examples() {
    for rel in [
        "crates/bench/src/bin/overload.rs",
        "tests/t.rs",
        "examples/e.rs",
    ] {
        let findings = lint_source(rel, include_str!("../fixtures/unwrap_in_lib.rs"));
        assert!(findings.is_empty(), "{rel} may unwrap: {findings:?}");
    }
}

#[test]
fn unsafe_fixture_fires() {
    let findings = lint_source(SCOPED, include_str!("../fixtures/unsafe_code.rs"));
    assert_eq!(lines_of(&findings, "forbid-unsafe"), vec![7]);
    assert_eq!(findings.len(), 1);
}

#[test]
fn unsafe_fixture_is_exempt_in_compat() {
    let findings = lint_source(
        "crates/compat/parking_lot/src/lib.rs",
        include_str!("../fixtures/unsafe_code.rs"),
    );
    assert!(findings.is_empty(), "compat may use unsafe: {findings:?}");
}

#[test]
fn lexer_edges_fixture_is_silent() {
    // Every rule keyword in this fixture sits inside a string, raw
    // string, char literal, doc comment or nested block comment; a
    // single finding means the lexer leaked text into the token stream.
    let findings = lint_source(SCOPED, include_str!("../fixtures/lexer_edges.rs"));
    assert!(
        findings.is_empty(),
        "lexer leaked text into tokens: {findings:?}"
    );
}

#[test]
fn suppressions_fixture_mixes_allowed_bad_and_stale() {
    let findings = lint_source(SCOPED, include_str!("../fixtures/suppressions.rs"));
    // The two justified allows suppress their findings entirely.
    assert!(lines_of(&findings, "no-wallclock").is_empty());
    // The reason-less marker leaves its violation standing and is
    // itself reported.
    assert_eq!(lines_of(&findings, "no-unwrap-in-lib"), vec![15]);
    assert_eq!(lines_of(&findings, "bad-suppression"), vec![15]);
    // The stale marker is flagged so annotations can't rot.
    assert_eq!(lines_of(&findings, "unused-allow"), vec![18]);
    assert_eq!(findings.len(), 3);
}

#[test]
fn diagnostics_render_sorted_and_stable() {
    let findings = lint_source(SCOPED, include_str!("../fixtures/wallclock.rs"));
    let rendered: Vec<String> = findings.iter().map(Finding::render).collect();
    let mut sorted = rendered.clone();
    sorted.sort();
    assert_eq!(rendered, sorted);
    assert!(rendered[0].starts_with("crates/accel/src/fixture.rs:4:"));
}
