//! Tier-1 wiring: `cargo test` fails if the real workspace regresses a
//! determinism invariant, and the `[workspace.lints]` escalation can't
//! be silently dropped from the manifests.

use std::path::{Path, PathBuf};

use sconna_lint::engine::lint_workspace;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("invariant: the lint crate lives two levels under the workspace root")
        .to_path_buf()
}

/// The whole workspace must lint clean — zero violations, zero
/// unexplained or stale suppressions. This is the mechanical lock-in of
/// the invariants PRs 3–5 proved dynamically.
#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let findings = lint_workspace(&root).expect("invariant: workspace sources are readable");
    assert!(
        findings.is_empty(),
        "sconna-lint found {} violation(s) in the workspace:\n{}",
        findings.len(),
        findings
            .iter()
            .map(sconna_lint::Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The walk must actually cover the workspace (a path bug that walked
/// nothing would also report "clean").
#[test]
fn workspace_walk_covers_all_crates() {
    let root = workspace_root();
    let files = sconna_lint::engine::collect_rs_files(&root).expect("invariant: root is readable");
    let rels: Vec<String> = files
        .iter()
        .map(|p| {
            p.strip_prefix(&root)
                .expect("invariant: walked files live under root")
        })
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    for must in [
        "src/lib.rs",
        "crates/sc/src/lib.rs",
        "crates/accel/src/serve/mod.rs",
        "crates/accel/src/serve/fleet.rs",
        "crates/accel/src/serve/autoscale.rs",
        "crates/sim/src/event.rs",
        "crates/sim/src/time.rs",
        "crates/tensor/src/layers.rs",
        "crates/photonics/src/thermal.rs",
        "crates/bench/src/bin/inference.rs",
        "crates/compat/rand/src/lib.rs",
        "crates/lint/src/lexer.rs",
    ] {
        assert!(rels.iter().any(|r| r == must), "walk missed {must}");
    }
    // The seeded-violation fixtures must NOT be walked.
    assert!(
        !rels.iter().any(|r| r.starts_with("crates/lint/fixtures/")),
        "fixtures leaked into the workspace walk"
    );
}

/// Pins the `unsafe_code = "forbid"` workspace lint and the per-crate
/// `[lints] workspace = true` inheritance, so the compiler-side half of
/// `forbid-unsafe` can't be silently dropped.
#[test]
fn workspace_lints_table_is_pinned() {
    let root = workspace_root();
    let root_manifest =
        std::fs::read_to_string(root.join("Cargo.toml")).expect("invariant: root manifest exists");
    assert!(
        root_manifest.contains("[workspace.lints.rust]"),
        "root Cargo.toml lost its [workspace.lints.rust] table"
    );
    assert!(
        root_manifest.contains("unsafe_code = \"forbid\""),
        "workspace lints no longer forbid unsafe_code"
    );
    assert!(
        root_manifest.contains("[workspace.lints.clippy]"),
        "root Cargo.toml lost its [workspace.lints.clippy] table"
    );

    // Every crate manifest must inherit the workspace lints table.
    let manifests = [
        "Cargo.toml", // the root facade package shares the file with [workspace]
        "crates/sc/Cargo.toml",
        "crates/photonics/Cargo.toml",
        "crates/tensor/Cargo.toml",
        "crates/sim/Cargo.toml",
        "crates/accel/Cargo.toml",
        "crates/bench/Cargo.toml",
        "crates/lint/Cargo.toml",
        "crates/compat/rand/Cargo.toml",
        "crates/compat/serde/Cargo.toml",
        "crates/compat/serde_derive/Cargo.toml",
        "crates/compat/crossbeam/Cargo.toml",
        "crates/compat/parking_lot/Cargo.toml",
        "crates/compat/criterion/Cargo.toml",
        "crates/compat/proptest/Cargo.toml",
    ];
    for rel in manifests {
        let text = std::fs::read_to_string(root.join(rel))
            .unwrap_or_else(|e| panic!("cannot read {rel}: {e}"));
        assert!(
            text.contains("[lints]") && text.contains("workspace = true"),
            "{rel} does not inherit [workspace.lints] (needs `[lints]\\nworkspace = true`)"
        );
    }
}
