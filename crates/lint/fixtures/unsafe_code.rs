// Fixture: seeded `forbid-unsafe` violation. The workspace is
// unsafe-free outside `crates/compat/` and `[workspace.lints]` sets
// `unsafe_code = "forbid"`; this fixture pins the lint-side check so
// the workspace rule can't be silently dropped.

fn transmute_free(x: u32) -> u32 {
    let y = unsafe { std::mem::transmute::<u32, u32>(x) }; // violation
    y
}

fn fine(x: u32) -> u32 {
    // "unsafe" in a string and a comment stays quiet: unsafe.
    let _label = "unsafe";
    x
}
