// Fixture: seeded `no-unordered-report-iteration` violations shaped like
// the steppable-fleet scheduler, linted under the pseudo-path
// `crates/accel/src/serve/fleet.rs` to pin that the serve/ submodule
// split kept every fleet file inside the rule's scope.

use std::collections::HashMap; // violation: unordered map in scope

struct InFlight {
    reqs: Vec<u64>,
}

fn snapshot_in_flight(nodes: &[Option<InFlight>]) -> Vec<(usize, usize)> {
    let mut by_instance: HashMap<usize, usize> = HashMap::new(); // violations: two mentions
    for (id, node) in nodes.iter().enumerate() {
        if let Some(fl) = node {
            by_instance.insert(id, fl.reqs.len());
        }
    }
    by_instance.into_iter().collect() // order leaks into the snapshot
}

fn snapshot_in_flight_deterministically(nodes: &[Option<InFlight>]) -> Vec<(usize, usize)> {
    // Instance order is the deterministic form the real fleet uses.
    nodes
        .iter()
        .enumerate()
        .filter_map(|(id, node)| node.as_ref().map(|fl| (id, fl.reqs.len())))
        .collect()
}
