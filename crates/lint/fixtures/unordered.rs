// Fixture: seeded `no-unordered-report-iteration` violations.
// HashMap/HashSet iteration order is randomized per process; anything
// built from it in the report/serve crates is nondeterministic output.

use std::collections::HashMap; // violation: unordered map in scope

fn tally(events: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new(); // violations: two mentions
    for e in events {
        *counts.entry(*e).or_default() += 1;
    }
    counts.into_iter().collect() // order leaks into the report
}

fn fine(events: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: std::collections::BTreeMap<u32, u32> = Default::default();
    for e in events {
        *counts.entry(*e).or_default() += 1;
    }
    counts.into_iter().collect()
}
