// Fixture: suppression syntax. Mixes correctly-allowed findings (with
// reasons), a reason-less marker (bad-suppression), and a stale marker
// (unused-allow).

fn allowed_trailing(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // sconna-lint: allow(no-unwrap-in-lib) -- fixture: demonstrating a justified allow
}

fn allowed_standalone() -> Instant {
    // sconna-lint: allow(no-wallclock) -- fixture: real elapsed time wanted here
    Instant::now()
}

fn missing_reason(xs: &[u32]) -> u32 {
    *xs.last().unwrap() // sconna-lint: allow(no-unwrap-in-lib)
}

// sconna-lint: allow(no-locked-rng) -- fixture: stale marker, nothing below locks an RNG
fn stale() -> u32 {
    9
}
