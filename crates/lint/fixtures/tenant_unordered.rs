// Fixture: seeded `no-unordered-report-iteration` violations shaped like
// per-tenant usage accounting, linted under the pseudo-paths of the
// multi-tenant serve files to pin that the per-tenant report path stays
// inside the rule's scope. A `HashMap` keyed by tenant here would leak
// its randomized iteration order straight into the order of the
// `TenantUsage` rows — the real fleet indexes tenants by roster
// position in plain `Vec`s.

use std::collections::HashMap; // violation: unordered map in scope

struct Usage {
    completed: u64,
}

fn usage_rows(names: &[&str], completed: &[u64]) -> Vec<(String, u64)> {
    let mut by_tenant: HashMap<String, Usage> = HashMap::new(); // violations: two mentions
    for (name, &done) in names.iter().zip(completed) {
        by_tenant.insert((*name).to_string(), Usage { completed: done });
    }
    by_tenant // order leaks into the report's tenant rows
        .into_iter()
        .map(|(name, u)| (name, u.completed))
        .collect()
}

fn usage_rows_deterministically(names: &[&str], completed: &[u64]) -> Vec<(String, u64)> {
    // Roster order is the deterministic form the real fleet uses.
    names
        .iter()
        .zip(completed)
        .map(|(name, &done)| ((*name).to_string(), done))
        .collect()
}
