// Fixture: seeded `no-unwrap-in-lib` violations. A panic in library
// code kills a serving worker mid-batch; either propagate the error or
// state the invariant that makes failure impossible.

fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // violation: bare unwrap
}

fn tail(xs: &[u32]) -> u32 {
    *xs.last().expect("list is empty") // violation: expect without invariant
}

fn documented(xs: &[u32]) -> u32 {
    *xs.first().expect("invariant: caller checked non-empty")
}

fn defaulted(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0).max(xs.len().try_into().unwrap_or(u32::MAX))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let xs = vec![1u32];
        assert_eq!(xs.first().copied().unwrap(), 1);
        assert_eq!(xs.last().copied().expect("present"), 1);
    }
}
