// Fixture: seeded `no-wallclock` violations. Simulated time must come
// from `sim::time::SimTime`; wall-clock reads make runs non-replayable.

use std::time::{Instant, SystemTime};

fn measure() -> u64 {
    let start = Instant::now(); // violation: wall-clock read
    let _stamp = SystemTime::now(); // violation: SystemTime use
    start.elapsed().as_nanos() as u64
}

fn fine(deadline: Instant) {
    // Holding an `Instant` value (no `::now` read) is not flagged,
    // and "Instant::now" inside a string is invisible to the rule.
    let _label = "Instant::now";
    let _ = deadline;
}
