// Fixture: seeded `no-locked-rng` violations (the exact regression
// PR 3 removed from `SconnaEngine`). Never compiled — lexed by the
// fixture self-test, which asserts each marked line fires.

use std::sync::{Mutex, RwLock};

struct LegacyEngine {
    rng: Mutex<StdRng>, // violation: locked RNG field
}

struct SharedNoise {
    rng: RwLock<rand::rngs::SmallRng>, // violation: RwLock'd RNG
}

fn build(seed: u64) -> Mutex<StdRng> {
    Mutex::new(StdRng::seed_from_u64(seed)) // violation: constructor form
}

fn fine() {
    // A mutex over plain state and an unlocked rng are both fine.
    let _counter = Mutex::new(0u64);
    let _rng = StdRng::seed_from_u64(7);
    // Keywords inside text never fire: "Mutex<StdRng>" stays quiet.
}
