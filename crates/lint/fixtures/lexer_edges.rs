// Fixture: lexer edge cases. Every rule keyword below appears ONLY
// inside strings, raw strings, char literals, doc comments or nested
// block comments — the whole file must produce ZERO findings under any
// pseudo-path. If a rule fires here, the lexer leaked text into the
// token stream.

//! Inner doc: Mutex<StdRng> Instant::now() SystemTime HashMap unsafe .unwrap()

/// Outer doc: call `.unwrap()` then `Instant::now()` on a `Mutex<StdRng>`.
fn strings() {
    let plain = "Mutex<StdRng> and RwLock<SmallRng> and SystemTime";
    let escaped = "say \"unsafe\" and \\ keep going with Instant::now";
    let raw = r"HashMap<The, Answer> unsafe";
    let raw_hash = r#"nested "quotes" around Instant::now and .unwrap()"#;
    let raw_two = r##"even r#"deeper"# quoting: Mutex::new(StdRng::x())"##;
    let bytes = b"SystemTime::now unsafe";
    let raw_bytes = br#"HashSet iteration .expect("oops")"#;
    let _ = (plain, escaped, raw, raw_hash, raw_two, bytes, raw_bytes);
}

fn chars() {
    // '"' must not open a phantom string that swallows the rest of the
    // file (which mentions unsafe and Instant::now in code position
    // inside this comment only).
    let quote = '"';
    let escaped_quote = '\'';
    let backslash = '\\';
    let newline = '\n';
    let byte_char = b'"';
    let _ = (quote, escaped_quote, backslash, newline, byte_char);
}

fn lifetimes<'a>(x: &'a str) -> &'a str {
    // Lifetimes must lex as lifetimes, not open char literals.
    let _static: &'static str = "SystemTime";
    x
}

/* Block comment: Mutex<StdRng> and .unwrap() and unsafe
   /* nested block comment: Instant::now() SystemTime HashMap */
   still inside the outer comment: RwLock<ThreadRng>
*/
fn after_comments() -> u32 {
    42
}

/** Doc block: `Mutex<StdRng>` /* nested */ `.unwrap()` */
fn doc_block() -> u32 {
    7
}
