//! The repo-grounded determinism & concurrency rules.
//!
//! Every rule protects an invariant the test suite proves dynamically
//! (bit-identical inference and serving reports across thread counts,
//! batch packings and arrival orderings); the rules make the same
//! invariants fail mechanically at lint time instead of via flaky
//! cross-worker diff tests. See `ARCHITECTURE.md` § "Static analysis &
//! invariants" for the rule ↔ paper/PR mapping.

use crate::lexer::{LexedFile, Token, TokenKind};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// A `Mutex`/`RwLock` wrapping an RNG serializes every draw and
    /// makes the stream position depend on thread scheduling — the
    /// exact regression PR 3 removed from `SconnaEngine`.
    NoLockedRng,
    /// `Instant::now` / `SystemTime` in simulator or library code leaks
    /// wall-clock nondeterminism; simulated time must come from
    /// `sim::time`.
    NoWallclock,
    /// `HashMap`/`HashSet` in the report/serve crates: iteration order
    /// is randomized per-process and would leak into report output.
    NoUnorderedReportIteration,
    /// `.unwrap()` / undocumented `.expect(...)` in non-test library
    /// code. `.expect("invariant: ...")` — stating the invariant — is
    /// the sanctioned form.
    NoUnwrapInLib,
    /// `unsafe` outside `crates/compat/`. The workspace is `unsafe`-free
    /// and `[workspace.lints]` forbids it; this pins the same thing for
    /// tools that vendor the code without cargo.
    ForbidUnsafe,
}

/// Every real rule, in diagnostic order.
pub const ALL_RULES: [Rule; 5] = [
    Rule::NoLockedRng,
    Rule::NoWallclock,
    Rule::NoUnorderedReportIteration,
    Rule::NoUnwrapInLib,
    Rule::ForbidUnsafe,
];

impl Rule {
    /// The kebab-case name used in diagnostics and `allow(...)` markers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoLockedRng => "no-locked-rng",
            Rule::NoWallclock => "no-wallclock",
            Rule::NoUnorderedReportIteration => "no-unordered-report-iteration",
            Rule::NoUnwrapInLib => "no-unwrap-in-lib",
            Rule::ForbidUnsafe => "forbid-unsafe",
        }
    }

    /// Parses a rule name as written in an `allow(...)` marker.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// Whether this rule applies to the workspace-relative path `rel`
    /// (forward slashes). The carve-outs are part of the rule contract:
    ///
    /// * `no-locked-rng` — everywhere except `crates/compat/` and the
    ///   intentionally-legacy mutex baseline in
    ///   `crates/bench/src/bin/inference.rs` (it *reproduces* the PR 2
    ///   hot path as the before-measurement).
    /// * `no-wallclock` — everywhere except `crates/bench/` (real
    ///   measurements need real clocks) and `crates/compat/criterion/`
    ///   (the timing harness itself).
    /// * `no-unordered-report-iteration` — the determinism-sensitive
    ///   crates whose output feeds reports: `accel`, `sim`, `sc`.
    /// * `no-unwrap-in-lib` — library source of the non-bench crates
    ///   (`src/` trees, excluding `src/bin/`) plus the root facade.
    /// * `forbid-unsafe` — everywhere except `crates/compat/`.
    pub fn applies_to(self, rel: &str) -> bool {
        let compat = rel.starts_with("crates/compat/");
        match self {
            Rule::NoLockedRng => !compat && rel != "crates/bench/src/bin/inference.rs",
            Rule::NoWallclock => {
                !rel.starts_with("crates/bench/") && !rel.starts_with("crates/compat/criterion/")
            }
            Rule::NoUnorderedReportIteration => {
                rel.starts_with("crates/accel/src/")
                    || rel.starts_with("crates/sim/src/")
                    || rel.starts_with("crates/sc/src/")
            }
            Rule::NoUnwrapInLib => {
                if rel.contains("/bin/") {
                    return false;
                }
                const LIB_CRATES: [&str; 6] = ["sc", "accel", "photonics", "sim", "tensor", "lint"];
                LIB_CRATES
                    .iter()
                    .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
                    || (rel.starts_with("src/") && !rel.starts_with("src/bin/"))
            }
            Rule::ForbidUnsafe => !compat,
        }
    }
}

/// One diagnostic: `path:line:col rule message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    pub rule_name: &'static str,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// Runs every applicable rule over a lexed file. `rel` is the
/// workspace-relative path used for scoping.
pub fn check_file(rel: &str, lexed: &LexedFile) -> Vec<RawFinding> {
    let tokens = &lexed.tokens;
    let mut findings = Vec::new();
    let test_mask = test_region_mask(tokens);
    for rule in ALL_RULES {
        if !rule.applies_to(rel) {
            continue;
        }
        match rule {
            Rule::NoLockedRng => check_locked_rng(tokens, &mut findings),
            Rule::NoWallclock => check_wallclock(tokens, &mut findings),
            Rule::NoUnorderedReportIteration => check_unordered(tokens, &mut findings),
            Rule::NoUnwrapInLib => check_unwrap(tokens, &test_mask, &mut findings),
            Rule::ForbidUnsafe => check_unsafe(tokens, &mut findings),
        }
    }
    findings
}

fn is_punct(t: &Token, ch: char) -> bool {
    t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.as_bytes()[0] == ch as u8
}

fn is_ident(t: &Token, name: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == name
}

/// Marks the token ranges belonging to test code: any item annotated
/// `#[test]` or `#[cfg(test)]` (or any cfg mentioning `test` without a
/// `not`), including the whole body of `#[cfg(test)] mod tests { ... }`.
/// `no-unwrap-in-lib` is scoped out of these regions — tests may
/// unwrap freely.
fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(is_punct(&tokens[i], '#') && i + 1 < tokens.len() && is_punct(&tokens[i + 1], '[')) {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut saw_test = false;
        let mut saw_not = false;
        while j < tokens.len() && depth > 0 {
            if is_punct(&tokens[j], '[') {
                depth += 1;
            } else if is_punct(&tokens[j], ']') {
                depth -= 1;
            } else if is_ident(&tokens[j], "test") {
                saw_test = true;
            } else if is_ident(&tokens[j], "not") {
                saw_not = true;
            }
            j += 1;
        }
        if !saw_test || saw_not {
            i = j;
            continue;
        }
        // Test attribute: mark through the end of the annotated item —
        // past any further attributes, then either the matching brace of
        // the first `{` or a top-level `;`.
        let start = i;
        let mut k = j;
        let mut brace_depth = 0usize;
        let mut entered = false;
        while k < tokens.len() {
            let t = &tokens[k];
            if is_punct(t, '{') {
                brace_depth += 1;
                entered = true;
            } else if is_punct(t, '}') {
                brace_depth = brace_depth.saturating_sub(1);
                if entered && brace_depth == 0 {
                    k += 1;
                    break;
                }
            } else if is_punct(t, ';') && !entered {
                k += 1;
                break;
            }
            k += 1;
        }
        for m in mask.iter_mut().take(k).skip(start) {
            *m = true;
        }
        i = k;
    }
    mask
}

/// An identifier that names an RNG type: `StdRng`, `SmallRng`,
/// `ThreadRng`, the `Rng`/`RngCore`/`SeedableRng` traits. Lower-case
/// variable names like `rng` deliberately do not match.
fn is_rng_ident(t: &Token) -> bool {
    t.kind == TokenKind::Ident && t.text.contains("Rng")
}

fn check_locked_rng(tokens: &[Token], findings: &mut Vec<RawFinding>) {
    for (i, t) in tokens.iter().enumerate() {
        if !(is_ident(t, "Mutex") || is_ident(t, "RwLock")) {
            continue;
        }
        let lock = &t.text;
        // `Mutex<... Rng ...>` — scan the generic argument list.
        if tokens.get(i + 1).is_some_and(|n| is_punct(n, '<')) {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < tokens.len() && depth > 0 {
                let u = &tokens[j];
                if is_punct(u, '<') {
                    depth += 1;
                } else if is_punct(u, '>') {
                    depth -= 1;
                } else if depth > 0 && is_rng_ident(u) {
                    findings.push(RawFinding {
                        rule_name: Rule::NoLockedRng.name(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`{lock}<{}>` serializes RNG draws and couples the stream \
                             position to thread scheduling; use a counter-keyed stream \
                             (see `accel::engine` SplitMix64 noise) instead",
                            u.text
                        ),
                    });
                    break;
                }
                j += 1;
            }
        }
        // `Mutex::new(StdRng::...)` — scan the constructor call.
        if tokens.get(i + 1).is_some_and(|n| is_punct(n, ':'))
            && tokens.get(i + 2).is_some_and(|n| is_punct(n, ':'))
            && tokens.get(i + 3).is_some_and(|n| is_ident(n, "new"))
            && tokens.get(i + 4).is_some_and(|n| is_punct(n, '('))
        {
            let mut depth = 1usize;
            let mut j = i + 5;
            while j < tokens.len() && depth > 0 {
                let u = &tokens[j];
                if is_punct(u, '(') {
                    depth += 1;
                } else if is_punct(u, ')') {
                    depth -= 1;
                } else if is_rng_ident(u) {
                    findings.push(RawFinding {
                        rule_name: Rule::NoLockedRng.name(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`{lock}::new({})` locks an RNG; use a counter-keyed \
                             stream instead",
                            u.text
                        ),
                    });
                    break;
                }
                j += 1;
            }
        }
    }
}

fn check_wallclock(tokens: &[Token], findings: &mut Vec<RawFinding>) {
    for (i, t) in tokens.iter().enumerate() {
        if is_ident(t, "Instant")
            && tokens.get(i + 1).is_some_and(|n| is_punct(n, ':'))
            && tokens.get(i + 2).is_some_and(|n| is_punct(n, ':'))
            && tokens.get(i + 3).is_some_and(|n| is_ident(n, "now"))
        {
            findings.push(RawFinding {
                rule_name: Rule::NoWallclock.name(),
                line: t.line,
                col: t.col,
                message: "`Instant::now` reads the wall clock; simulated time must come \
                          from `sim::time::SimTime` so runs replay bit-identically"
                    .to_string(),
            });
        }
        if is_ident(t, "SystemTime") {
            findings.push(RawFinding {
                rule_name: Rule::NoWallclock.name(),
                line: t.line,
                col: t.col,
                message: "`SystemTime` reads the wall clock; simulated time must come \
                          from `sim::time::SimTime` so runs replay bit-identically"
                    .to_string(),
            });
        }
    }
}

fn check_unordered(tokens: &[Token], findings: &mut Vec<RawFinding>) {
    for t in tokens {
        if is_ident(t, "HashMap") || is_ident(t, "HashSet") {
            findings.push(RawFinding {
                rule_name: Rule::NoUnorderedReportIteration.name(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` in a determinism-sensitive crate: iteration order is \
                     randomized per process and leaks into any report built from it; \
                     use `BTreeMap`/`Vec`, or allow with a reason stating why order \
                     is never observed",
                    t.text
                ),
            });
        }
    }
}

fn check_unwrap(tokens: &[Token], test_mask: &[bool], findings: &mut Vec<RawFinding>) {
    for (i, t) in tokens.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !is_punct(t, '.') {
            continue;
        }
        let Some(name) = tokens.get(i + 1) else {
            continue;
        };
        if is_ident(name, "unwrap")
            && tokens.get(i + 2).is_some_and(|n| is_punct(n, '('))
            && tokens.get(i + 3).is_some_and(|n| is_punct(n, ')'))
        {
            findings.push(RawFinding {
                rule_name: Rule::NoUnwrapInLib.name(),
                line: name.line,
                col: name.col,
                message: "`.unwrap()` in library code can panic a serving worker; \
                          propagate the error or use `.expect(\"invariant: ...\")` \
                          stating why failure is impossible"
                    .to_string(),
            });
        } else if is_ident(name, "expect") && tokens.get(i + 2).is_some_and(|n| is_punct(n, '(')) {
            let arg = tokens.get(i + 3);
            let documented =
                arg.is_some_and(|a| a.kind == TokenKind::Str && a.text.starts_with("invariant: "));
            if !documented {
                findings.push(RawFinding {
                    rule_name: Rule::NoUnwrapInLib.name(),
                    line: name.line,
                    col: name.col,
                    message: "`.expect(...)` in library code must state the invariant \
                              that makes failure impossible: \
                              `.expect(\"invariant: ...\")`"
                        .to_string(),
                });
            }
        }
    }
}

fn check_unsafe(tokens: &[Token], findings: &mut Vec<RawFinding>) {
    for t in tokens {
        if is_ident(t, "unsafe") {
            findings.push(RawFinding {
                rule_name: Rule::ForbidUnsafe.name(),
                line: t.line,
                col: t.col,
                message: "`unsafe` is forbidden outside `crates/compat/`; the workspace \
                          is unsafe-free and `[workspace.lints]` pins it — keep it \
                          that way"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_fired(rel: &str, src: &str) -> Vec<&'static str> {
        check_file(rel, &lex(src))
            .into_iter()
            .map(|f| f.rule_name)
            .collect()
    }

    const LIB: &str = "crates/accel/src/x.rs";

    #[test]
    fn locked_rng_generic_and_constructor() {
        assert_eq!(
            rules_fired(LIB, "struct S { rng: Mutex<StdRng> }"),
            vec!["no-locked-rng"]
        );
        assert_eq!(
            rules_fired(LIB, "let r = RwLock::new(SmallRng::seed_from_u64(0));"),
            vec!["no-locked-rng"]
        );
        // A mutex over non-RNG state is fine; a bare rng is fine.
        assert!(rules_fired(LIB, "let m = Mutex::new(0u64); let rng = StdRng::x();").is_empty());
    }

    #[test]
    fn locked_rng_exempts_legacy_bench_baseline() {
        let src = "struct Legacy { rng: Mutex<StdRng> }";
        assert!(rules_fired("crates/bench/src/bin/inference.rs", src).is_empty());
        assert_eq!(
            rules_fired("crates/bench/src/lib.rs", src),
            vec!["no-locked-rng"]
        );
    }

    #[test]
    fn wallclock_sites() {
        assert_eq!(
            rules_fired(LIB, "let t = Instant::now();"),
            vec!["no-wallclock"]
        );
        assert_eq!(
            rules_fired(LIB, "use std::time::SystemTime;"),
            vec!["no-wallclock"]
        );
        // Scoped out in bench and the criterion harness.
        assert!(rules_fired("crates/bench/src/lib.rs", "let t = Instant::now();").is_empty());
        assert!(rules_fired(
            "crates/compat/criterion/src/lib.rs",
            "let t = Instant::now();"
        )
        .is_empty());
        // `Instant` alone (e.g. stored as a field type in bench-only
        // structs) is not flagged — only the clock read.
        assert!(rules_fired(LIB, "fn f(t: Instant) {}").is_empty());
    }

    #[test]
    fn unordered_containers_only_in_scoped_crates() {
        let src = "use std::collections::HashMap; let m: HashMap<u32, u32> = HashMap::new();";
        assert_eq!(rules_fired("crates/sim/src/x.rs", src).len(), 3);
        assert_eq!(rules_fired("crates/sc/src/x.rs", src).len(), 3);
        // The serve/ submodule split stays in scope (prefix, not file) —
        // including the PR 8 self-healing modules.
        assert_eq!(rules_fired("crates/accel/src/serve/fleet.rs", src).len(), 3);
        assert_eq!(rules_fired("crates/accel/src/serve/fault.rs", src).len(), 3);
        assert_eq!(
            rules_fired("crates/accel/src/serve/failure.rs", src).len(),
            3
        );
        assert_eq!(
            rules_fired("crates/accel/src/serve/supervisor.rs", src).len(),
            3
        );
        assert!(rules_fired("crates/tensor/src/x.rs", src).is_empty());
        assert_eq!(
            rules_fired(LIB, "let s = HashSet::new();"),
            vec!["no-unordered-report-iteration"]
        );
    }

    #[test]
    fn unwrap_and_undocumented_expect() {
        assert_eq!(
            rules_fired(LIB, "fn f() { x().unwrap(); }"),
            vec!["no-unwrap-in-lib"]
        );
        assert_eq!(
            rules_fired(LIB, "fn f() { x().expect(\"oops\"); }"),
            vec!["no-unwrap-in-lib"]
        );
        assert!(rules_fired(
            LIB,
            "fn f() { x().expect(\"invariant: y checked above\"); }"
        )
        .is_empty());
        // unwrap_or / unwrap_or_else are fine.
        assert!(rules_fired(LIB, "fn f() { x().unwrap_or(0).unwrap_or_else(|| 1); }").is_empty());
        // Out of scope: bins, tests dir, bench, examples.
        assert!(rules_fired(
            "crates/bench/src/bin/serving.rs",
            "fn f() { x().unwrap(); }"
        )
        .is_empty());
        assert!(rules_fired("tests/t.rs", "fn f() { x().unwrap(); }").is_empty());
        assert!(rules_fired("examples/e.rs", "fn f() { x().unwrap(); }").is_empty());
    }

    #[test]
    fn unwrap_skips_test_regions() {
        let src = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { x().unwrap(); }\n}\nfn lib() { y().unwrap(); }";
        let findings = check_file(LIB, &lex(src));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn lib() { y().unwrap(); }";
        assert_eq!(rules_fired(LIB, src), vec!["no-unwrap-in-lib"]);
    }

    #[test]
    fn test_attribute_on_fn_without_module() {
        let src = "#[test]\nfn t() { x().unwrap(); }\nfn lib() { y().unwrap(); }";
        let findings = check_file(LIB, &lex(src));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn unsafe_fires_everywhere_but_compat() {
        assert_eq!(
            rules_fired("tests/t.rs", "unsafe { x() }"),
            vec!["forbid-unsafe"]
        );
        assert!(rules_fired("crates/compat/parking_lot/src/lib.rs", "unsafe { x() }").is_empty());
    }

    #[test]
    fn keywords_inside_text_never_fire() {
        let src = r##"
            fn f() {
                let a = "Mutex<StdRng> Instant::now SystemTime unsafe .unwrap()";
                let b = r#"HashMap HashSet unsafe"#;
                let c = '"'; // and unsafe in a comment: Mutex<StdRng>
                /* SystemTime /* nested unsafe */ still text */
            }
        "##;
        assert!(rules_fired(LIB, src).is_empty());
    }
}
