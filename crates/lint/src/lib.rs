//! `sconna-lint` — a dependency-free determinism & concurrency
//! static-analysis pass for this workspace.
//!
//! The repo's core claim is that inference results and serving reports
//! are **bit-identical** across thread counts, batch packings and
//! arrival orderings. That property rests on a handful of coding
//! invariants that `cargo test` can only probe dynamically (and
//! flakily, since a nondeterminism bug may need the right interleaving
//! to show). This crate checks them *mechanically*, at lint time:
//!
//! | rule | invariant it protects |
//! |------|----------------------|
//! | `no-locked-rng` | no `Mutex`/`RwLock` around an RNG — stream position must not depend on scheduling (the PR 3 regression) |
//! | `no-wallclock` | no `Instant::now`/`SystemTime` outside `crates/bench/` — simulated time comes from `sim::time` |
//! | `no-unordered-report-iteration` | no `HashMap`/`HashSet` in the report/serve crates — iteration order leaks into output |
//! | `no-unwrap-in-lib` | no `.unwrap()`/undocumented `.expect` in library code — a panic kills a serving worker |
//! | `forbid-unsafe` | the workspace stays `unsafe`-free outside `crates/compat/` |
//!
//! Architecture: [`lexer`] produces line/column-tracked tokens with
//! strings, raw strings, char literals and nested comments handled (so
//! rules never fire inside text); [`rules`] pattern-matches the token
//! stream with per-path scoping; [`engine`] walks the workspace,
//! applies the `// sconna-lint: allow(<rule>) -- <why>` suppression
//! syntax (reason mandatory, unused markers flagged) and renders
//! deterministic `path:line:col rule message` diagnostics plus a
//! `--json` form for CI artifacts.
//!
//! Run it with `cargo run --release -p sconna-lint`; it exits nonzero
//! on any finding. The fixture suite under `fixtures/` seeds one
//! violation per rule and the integration tests prove each rule fires
//! on it — and that the real workspace is clean.

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{lint_source, lint_workspace, to_json, Finding};
pub use rules::{Rule, ALL_RULES};
