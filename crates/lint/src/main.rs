//! CLI for `sconna-lint`: lints the workspace, prints deterministic
//! `path:line:col rule message` diagnostics (or `--json`), exits
//! nonzero on any finding.

use std::path::PathBuf;
use std::process::ExitCode;

use sconna_lint::engine::{lint_workspace, to_json};

const USAGE: &str = "\
sconna-lint — determinism & concurrency static analysis for this workspace

USAGE:
    cargo run --release -p sconna-lint [-- OPTIONS]

OPTIONS:
    --root <DIR>       workspace root to lint (default: auto-detected by
                       walking up from the current directory to the
                       [workspace] Cargo.toml)
    --json             print findings as a JSON array on stdout instead
                       of human-readable lines
    --json-out <FILE>  additionally write the JSON array to FILE (the CI
                       artifact), keeping human output on stdout
    --list-rules       print the rule names and exit
    -h, --help         print this help

Exit status is 0 when the workspace is clean, 1 on any finding, 2 on
usage or I/O errors. Suppress a finding with a mandatory reason:
    // sconna-lint: allow(<rule>) -- <why this is sound>
    // sconna-lint: allow-file(<rule>) -- <why this is sound>
";

struct Options {
    root: Option<PathBuf>,
    json: bool,
    json_out: Option<PathBuf>,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        root: None,
        json: false,
        json_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--json-out" => {
                let path = args.next().ok_or("--json-out requires a file path")?;
                opts.json_out = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = args.next().ok_or("--root requires a directory path")?;
                opts.root = Some(PathBuf::from(path));
            }
            "--list-rules" => {
                for rule in sconna_lint::ALL_RULES {
                    println!("{}", rule.name());
                }
                return Ok(None);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(opts))
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no [workspace] Cargo.toml found above the current directory".to_string());
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let Some(opts) = parse_args()? else {
        return Ok(ExitCode::SUCCESS);
    };
    let root = match opts.root {
        Some(r) => r,
        None => find_workspace_root()?,
    };
    let findings = lint_workspace(&root)
        .map_err(|e| format!("lint walk failed under {}: {e}", root.display()))?;

    if let Some(path) = &opts.json_out {
        std::fs::write(path, to_json(&findings))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if opts.json {
        print!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            eprintln!("sconna-lint: clean");
        } else {
            eprintln!("sconna-lint: {} finding(s)", findings.len());
        }
    }
    Ok(if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("sconna-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
