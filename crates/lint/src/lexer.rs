//! A small real Rust lexer: line/column-tracked tokens with string
//! literals, raw strings, byte strings, char literals, lifetimes and
//! (nested) block/doc comments handled, so rules never fire on keywords
//! that only appear inside text.
//!
//! This is deliberately not a full Rust grammar — rules pattern-match
//! over a flat significant-token stream — but the *lexical* layer is
//! faithful: everything the lexer classifies as a string, char or
//! comment is invisible to the rules, and everything else carries an
//! exact 1-based `line:col` for diagnostics.

/// Kind of a significant (non-comment) token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`Mutex`, `unsafe`, `r#try`, ...).
    Ident,
    /// A single punctuation character (`.`, `<`, `:`, ...). Multi-char
    /// operators appear as consecutive single-char tokens.
    Punct,
    /// String literal (`"..."`, `r#"..."#`, `b"..."`). `text` holds the
    /// *inner* contents, un-escaped only as far as rules need (raw).
    Str,
    /// Char or byte-char literal (`'a'`, `'\''`, `b'x'`, `'"'`).
    Char,
    /// Lifetime (`'a`, `'static`). `text` excludes the quote.
    Lifetime,
    /// Numeric literal (`42`, `1e9`, `0x1F`, `1_000u64`, `1.5e-3`).
    Number,
}

/// One significant token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// One comment (line, doc or block). Comments are kept out of the
/// significant stream but retained so the suppression syntax
/// (`// sconna-lint: allow(...) -- reason`) can be parsed.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body without the `//` / `/*` / `*/` framing.
    pub text: String,
    /// Line the comment starts on.
    pub line: u32,
    /// Line the comment ends on (same as `line` for line comments).
    pub end_line: u32,
    pub col: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line/col. Multi-byte UTF-8
    /// continuation bytes do not advance the column, so columns count
    /// characters, not bytes.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into significant tokens plus comments.
///
/// The lexer never fails: bytes it cannot classify become single-char
/// `Punct` tokens, and unterminated strings/comments simply run to end
/// of file. Determinism-lint rules only ever *miss* on malformed input,
/// they cannot spuriously fire inside text.
pub fn lex(src: &str) -> LexedFile {
    let mut c = Cursor::new(src);
    let mut out = LexedFile::default();

    while let Some(b) = c.peek(0) {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => lex_line_comment(&mut c, &mut out, line, col),
            b'/' if c.peek(1) == Some(b'*') => lex_block_comment(&mut c, &mut out, line, col),
            b'"' => {
                let text = lex_cooked_string(&mut c);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                });
            }
            b'r' if starts_raw_string(&c, 1) => {
                c.bump(); // r
                let text = lex_raw_string(&mut c);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                });
            }
            b'b' if c.peek(1) == Some(b'"') => {
                c.bump(); // b
                let text = lex_cooked_string(&mut c);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                });
            }
            b'b' if c.peek(1) == Some(b'r') && starts_raw_string(&c, 2) => {
                c.bump(); // b
                c.bump(); // r
                let text = lex_raw_string(&mut c);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                });
            }
            b'b' if c.peek(1) == Some(b'\'') => {
                c.bump(); // b
                let text = lex_char_literal(&mut c);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text,
                    line,
                    col,
                });
            }
            b'\'' => lex_quote(&mut c, &mut out, line, col),
            _ if is_ident_start(b) => {
                let text = lex_ident(&mut c);
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                let text = lex_number(&mut c);
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text,
                    line,
                    col,
                });
            }
            _ => {
                c.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// True when the bytes at `offset` (just past an `r` / `br` prefix)
/// begin a raw string: zero or more `#` then `"`.
fn starts_raw_string(c: &Cursor<'_>, offset: usize) -> bool {
    let mut i = offset;
    while c.peek(i) == Some(b'#') {
        i += 1;
    }
    c.peek(i) == Some(b'"')
}

fn lex_line_comment(c: &mut Cursor<'_>, out: &mut LexedFile, line: u32, col: u32) {
    c.bump(); // /
    c.bump(); // /
    let mut text = String::new();
    while let Some(b) = c.peek(0) {
        if b == b'\n' {
            break;
        }
        text.push(b as char);
        c.bump();
    }
    out.comments.push(Comment {
        text,
        line,
        end_line: line,
        col,
    });
}

fn lex_block_comment(c: &mut Cursor<'_>, out: &mut LexedFile, line: u32, col: u32) {
    c.bump(); // /
    c.bump(); // *
    let mut depth = 1usize;
    let mut text = String::new();
    while let Some(b) = c.peek(0) {
        if b == b'/' && c.peek(1) == Some(b'*') {
            depth += 1;
            text.push_str("/*");
            c.bump();
            c.bump();
        } else if b == b'*' && c.peek(1) == Some(b'/') {
            depth -= 1;
            c.bump();
            c.bump();
            if depth == 0 {
                break;
            }
            text.push_str("*/");
        } else {
            text.push(b as char);
            c.bump();
        }
    }
    let end_line = c.line;
    out.comments.push(Comment {
        text,
        line,
        end_line,
        col,
    });
}

/// Lexes a `"..."` body (opening quote still pending). Handles `\"`,
/// `\\` and every other escape by skipping the escaped byte.
fn lex_cooked_string(c: &mut Cursor<'_>) -> String {
    c.bump(); // opening "
    let mut text = String::new();
    while let Some(b) = c.bump() {
        match b {
            b'"' => break,
            b'\\' => {
                text.push('\\');
                if let Some(e) = c.bump() {
                    text.push(e as char);
                }
            }
            _ => text.push(b as char),
        }
    }
    text
}

/// Lexes `#*"..."#*` (the `r`/`br` prefix already consumed): counts the
/// opening hashes, then scans for `"` followed by that many hashes.
fn lex_raw_string(c: &mut Cursor<'_>) -> String {
    let mut hashes = 0usize;
    while c.peek(0) == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    c.bump(); // opening "
    let mut text = String::new();
    while let Some(b) = c.peek(0) {
        if b == b'"' {
            let mut all = true;
            for i in 0..hashes {
                if c.peek(1 + i) != Some(b'#') {
                    all = false;
                    break;
                }
            }
            if all {
                c.bump(); // closing "
                for _ in 0..hashes {
                    c.bump();
                }
                break;
            }
        }
        text.push(b as char);
        c.bump();
    }
    text
}

/// Lexes a char literal body (opening `'` still pending): `'a'`, `'\''`,
/// `'\n'`, `'"'`.
fn lex_char_literal(c: &mut Cursor<'_>) -> String {
    c.bump(); // opening '
    let mut text = String::new();
    while let Some(b) = c.bump() {
        match b {
            b'\'' => break,
            b'\\' => {
                text.push('\\');
                if let Some(e) = c.bump() {
                    text.push(e as char);
                }
            }
            _ => text.push(b as char),
        }
    }
    text
}

/// Disambiguates `'` between char literals and lifetimes.
///
/// After the quote: a backslash means a char escape; a single character
/// followed by a closing `'` is a char literal (this is what keeps
/// `'"'` from opening a phantom string); anything else that starts like
/// an identifier is a lifetime.
fn lex_quote(c: &mut Cursor<'_>, out: &mut LexedFile, line: u32, col: u32) {
    let next = c.peek(1);
    let after = c.peek(2);
    let is_char = match next {
        Some(b'\\') => true,
        Some(n) if !is_ident_start(n) => true, // e.g. '"' or '.'
        Some(_) => after == Some(b'\''),       // 'a' yes, 'abc / 'static no
        None => true,
    };
    if is_char {
        let text = lex_char_literal(c);
        out.tokens.push(Token {
            kind: TokenKind::Char,
            text,
            line,
            col,
        });
    } else {
        c.bump(); // '
        let text = lex_ident(c);
        out.tokens.push(Token {
            kind: TokenKind::Lifetime,
            text,
            line,
            col,
        });
    }
}

fn lex_ident(c: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    // Raw identifiers (`r#try`) reach here only via the `r` path when
    // not followed by a quote; starts_raw_string() already rejected
    // them, so `r#try` lexes as ident `r`, punct `#`, ident `try` —
    // close enough for pattern rules.
    while let Some(b) = c.peek(0) {
        if !is_ident_continue(b) {
            break;
        }
        text.push(b as char);
        c.bump();
    }
    text
}

fn lex_number(c: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    while let Some(b) = c.peek(0) {
        if b.is_ascii_alphanumeric() || b == b'_' {
            text.push(b as char);
            c.bump();
            // Exponent sign: `1e-3`, `2.5E+10`.
            if (b == b'e' || b == b'E')
                && matches!(c.peek(0), Some(b'+' | b'-'))
                && c.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                let sign = c.peek(0);
                if let Some(s) = sign {
                    text.push(s as char);
                }
                c.bump();
            }
        } else if b == b'.' && c.peek(1).is_some_and(|d| d.is_ascii_digit()) {
            // `1.5` continues the number; `0..n` and `1.method()` stop.
            text.push('.');
            c.bump();
        } else {
            break;
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn idents_and_positions() {
        let f = lex("let x = 1;\nlet y = x;\n");
        let x = f.tokens.iter().find(|t| t.text == "y").expect("token y");
        assert_eq!((x.line, x.col), (2, 5));
    }

    #[test]
    fn string_contents_are_not_idents() {
        assert_eq!(
            idents(r#"let s = "Mutex<StdRng> unsafe";"#),
            vec!["let", "s"]
        );
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let src = "let s = r#\"contains \"Instant::now\" text\"#; let t = 1;";
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(
            idents("let s = b\"unsafe\"; let r = br#\"SystemTime\"#;"),
            vec!["let", "s", "let", "r"]
        );
    }

    #[test]
    fn nested_block_comment() {
        let src = "/* outer /* inner Mutex<StdRng> */ still comment */ let a = 1;";
        assert_eq!(idents(src), vec!["let", "a"]);
        let f = lex(src);
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("inner"));
    }

    #[test]
    fn char_literal_with_double_quote_does_not_open_string() {
        // If '"' were mis-lexed as a lifetime + string start, `unsafe`
        // would vanish into a phantom string literal.
        let src = "let q = '\"'; let k = unsafe_marker;";
        assert_eq!(idents(src), vec!["let", "q", "let", "k", "unsafe_marker"]);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let q = '\''; let s = 2;";
        assert_eq!(idents(src), vec!["let", "q", "let", "s"]);
        let f = lex(src);
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "\\'"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> &'static str { x }");
        let lifetimes: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// call `.unwrap()` here\n//! and `Instant::now`\n/** or /* nested */ this */\nfn f() {}";
        let f = lex(src);
        assert_eq!(f.comments.len(), 3);
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let f = lex("let a = 1e-3; for i in 0..10 { let b = 0x1F_u64; }");
        let nums: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1e-3", "0", "10", "0x1F_u64"]);
    }

    #[test]
    fn multibyte_utf8_counts_columns_by_char() {
        // "é" is two bytes but one column.
        let f = lex("let é = 1; let x = 2;");
        let x = f.tokens.iter().find(|t| t.text == "x").expect("token x");
        assert_eq!((x.line, x.col), (1, 16));
    }

    #[test]
    fn unterminated_string_runs_to_eof_without_panic() {
        let f = lex("let s = \"never closed");
        assert_eq!(f.tokens.last().map(|t| t.kind), Some(TokenKind::Str));
    }
}
