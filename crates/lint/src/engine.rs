//! File walking, suppression handling and diagnostic formatting.
//!
//! Suppression syntax (a reason is mandatory — the tool reports
//! reason-less markers as `bad-suppression` findings, so there can be
//! no unexplained suppressions):
//!
//! ```text
//! // sconna-lint: allow(<rule>) -- <why>        suppresses <rule> on this
//! //                                            line and the next line
//! // sconna-lint: allow-file(<rule>) -- <why>   suppresses <rule> in the
//! //                                            whole file
//! ```
//!
//! A marker that suppresses nothing is itself reported
//! (`unused-allow`), so stale annotations cannot accumulate.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Comment};
use crate::rules::{check_file, Rule};

/// Diagnostic rule name for malformed / reason-less suppression markers.
pub const BAD_SUPPRESSION: &str = "bad-suppression";
/// Diagnostic rule name for suppression markers that suppressed nothing.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// One reportable diagnostic, bound to a workspace-relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: String,
    pub message: String,
}

impl Finding {
    /// The human format: `path:line:col rule message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{} {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

#[derive(Debug)]
enum Scope {
    /// Applies to the marker's line and the immediately following line.
    Lines {
        from: u32,
        to: u32,
    },
    File,
}

#[derive(Debug)]
struct Suppression {
    rule: Rule,
    scope: Scope,
    line: u32,
    col: u32,
    used: bool,
}

/// Parses every `sconna-lint:` marker out of a file's comments.
/// Malformed markers become `bad-suppression` findings immediately.
///
/// Only plain comments whose text *starts* with the marker count as
/// directives: doc comments (`///`, `//!`, `/** */` — their text starts
/// with `/`, `!` or `*`) and prose that merely mentions the marker are
/// skipped, so documentation *about* the syntax never parses as a
/// suppression.
fn parse_suppressions(comments: &[Comment], findings: &mut Vec<RelFinding>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        let text = c.text.trim_start();
        if text.starts_with('/') || text.starts_with('!') || text.starts_with('*') {
            continue;
        }
        let Some(rest) = text.strip_prefix("sconna-lint:") else {
            continue;
        };
        let directive = rest.trim();
        let mut bad = |why: &str| {
            findings.push(RelFinding {
                line: c.line,
                col: c.col,
                rule: BAD_SUPPRESSION.to_string(),
                message: format!("malformed suppression `{directive}`: {why}"),
            });
        };
        let (file_scoped, rest) = if let Some(r) = directive.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = directive.strip_prefix("allow(") {
            (false, r)
        } else {
            bad("expected `allow(<rule>) -- <reason>` or `allow-file(<rule>) -- <reason>`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("missing `)` after rule name");
            continue;
        };
        let name = rest[..close].trim();
        let Some(rule) = Rule::from_name(name) else {
            bad(&format!("unknown rule `{name}`"));
            continue;
        };
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix("--") else {
            bad("a reason is required: `-- <why this is sound>`");
            continue;
        };
        if reason.trim().is_empty() {
            bad("a reason is required: `-- <why this is sound>`");
            continue;
        }
        out.push(Suppression {
            rule,
            scope: if file_scoped {
                Scope::File
            } else {
                // A trailing marker covers its own line; a standalone
                // marker line covers the line after the comment ends.
                Scope::Lines {
                    from: c.line,
                    to: c.end_line + 1,
                }
            },
            line: c.line,
            col: c.col,
            used: false,
        });
    }
    out
}

/// A finding not yet bound to a path.
struct RelFinding {
    line: u32,
    col: u32,
    rule: String,
    message: String,
}

/// Lints one file's source under its workspace-relative path: lex, run
/// rules, apply suppressions, report suppression hygiene.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let mut meta: Vec<RelFinding> = Vec::new();
    let mut suppressions = parse_suppressions(&lexed.comments, &mut meta);

    let mut kept: Vec<RelFinding> = Vec::new();
    for f in check_file(rel, &lexed) {
        let suppressed = suppressions.iter_mut().any(|s| {
            let applies = s.rule.name() == f.rule_name
                && match s.scope {
                    Scope::Lines { from, to } => (from..=to).contains(&f.line),
                    Scope::File => true,
                };
            if applies {
                s.used = true;
            }
            applies
        });
        if !suppressed {
            kept.push(RelFinding {
                line: f.line,
                col: f.col,
                rule: f.rule_name.to_string(),
                message: f.message,
            });
        }
    }
    for s in &suppressions {
        // Only flag unused markers for rules in scope here: an allow for
        // an out-of-scope rule is simply dead text worth removing.
        if !s.used {
            kept.push(RelFinding {
                line: s.line,
                col: s.col,
                rule: UNUSED_ALLOW.to_string(),
                message: format!(
                    "suppression `allow({})` does not match any finding; remove it",
                    s.rule.name()
                ),
            });
        }
    }
    kept.extend(meta);

    let mut out: Vec<Finding> = kept
        .into_iter()
        .map(|f| Finding {
            path: rel.to_string(),
            line: f.line,
            col: f.col,
            rule: f.rule,
            message: f.message,
        })
        .collect();
    out.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    out
}

/// Recursively collects every workspace `.rs` file under `root`,
/// skipping build output, VCS metadata and the lint fixtures (which
/// contain seeded violations on purpose). Paths come back sorted so
/// diagnostics are deterministic.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                if name == "fixtures" && dir.ends_with("crates/lint") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints the whole workspace rooted at `root`. Findings are sorted by
/// path, then line, then column — byte-identical across runs.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut out = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        out.extend(lint_source(&rel, &src));
    }
    out.sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    Ok(out)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes findings as a JSON array (dependency-free, stable field
/// order) for the CI artifact.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"path\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}{}\n",
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.rule),
            json_escape(&f.message),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/accel/src/x.rs";

    #[test]
    fn trailing_allow_with_reason_suppresses() {
        let src =
            "fn f() { x().unwrap(); } // sconna-lint: allow(no-unwrap-in-lib) -- test scaffold\n";
        assert!(lint_source(LIB, src).is_empty());
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let src = "// sconna-lint: allow(no-wallclock) -- measuring real IO here\nlet t = Instant::now();\n";
        assert!(lint_source(LIB, src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let src = "fn f() { x().unwrap(); } // sconna-lint: allow(no-unwrap-in-lib)\n";
        let f = lint_source(LIB, src);
        // The violation stays AND the marker is flagged.
        assert!(f.iter().any(|d| d.rule == "no-unwrap-in-lib"));
        assert!(f.iter().any(|d| d.rule == BAD_SUPPRESSION));
    }

    #[test]
    fn allow_unknown_rule_is_reported() {
        let src = "// sconna-lint: allow(no-such-rule) -- whatever\n";
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, BAD_SUPPRESSION);
        assert!(f[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// sconna-lint: allow(no-wallclock) -- stale reason\nfn f() {}\n";
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, UNUSED_ALLOW);
    }

    #[test]
    fn allow_file_covers_whole_file() {
        let src = "// sconna-lint: allow-file(no-unordered-report-iteration) -- keyed get/insert only, never iterated\nuse std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        assert!(lint_source("crates/sc/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_only_suppresses_named_rule() {
        let src = "// sconna-lint: allow(no-wallclock) -- real clock wanted\nlet t = (Instant::now(), y().unwrap());\n";
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-unwrap-in-lib");
    }

    #[test]
    fn findings_render_and_sort_deterministically() {
        let src = "fn f() { b().unwrap(); }\nfn g() { a().unwrap(); }\n";
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
        assert!(f[0].render().starts_with("crates/accel/src/x.rs:1:"));
    }

    #[test]
    fn json_output_is_wellformed_enough() {
        let f = vec![Finding {
            path: "a.rs".to_string(),
            line: 1,
            col: 2,
            rule: "forbid-unsafe".to_string(),
            message: "say \"no\"\nplease".to_string(),
        }];
        let j = to_json(&f);
        assert!(j.contains("\"path\":\"a.rs\""));
        assert!(j.contains("say \\\"no\\\"\\nplease"));
        assert_eq!(to_json(&[]), "[\n]\n");
    }
}
