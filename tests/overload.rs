//! Overload & admission-control guarantees: every offered request reaches
//! exactly one terminal state (served + dropped + degraded == offered)
//! under every policy, fleet shape and arrival process; an infinite-cap
//! `DropNewest` scheduler is bit-identical to the unbounded one; the
//! bounded queue never exceeds its bound; and the open-loop overload
//! sweep's knee sits at the closed-form capacity estimate.

use proptest::prelude::*;
use sconna::accel::serve::{
    overload_sweep, simulate_serving, AdmissionPolicy, ArrivalProcess, Fleet, FunctionalWorkload,
    ServingConfig, TenantScheduler, TenantSpec,
};
use sconna::accel::{AcceleratorConfig, SconnaEngine};
use sconna::sim::time::SimTime;
use sconna::tensor::dataset::Sample;
use sconna::tensor::layers::{MaxPool2d, QConv2d, QFc};
use sconna::tensor::models::shufflenet_v2;
use sconna::tensor::network::{QLayer, QuantizedNetwork};
use sconna::tensor::quant::{ActivationQuant, Requant, WeightQuant};
use sconna::tensor::Tensor;

/// A hand-built quantized CNN plus a labelled request population for the
/// functional overload points.
fn tiny_workload(seed: u64) -> (QuantizedNetwork, Vec<Sample>) {
    let aq = ActivationQuant {
        scale: 1.0 / 255.0,
        bits: 8,
    };
    let wq = WeightQuant {
        scale: 1.0 / 127.0,
        bits: 8,
    };
    let net = QuantizedNetwork {
        input_quant: aq,
        layers: vec![
            QLayer::Conv(QConv2d {
                name: format!("c1-{seed}"),
                weights: Tensor::from_fn(&[4, 1, 3, 3], |i| {
                    ((i as u64 * 29 + seed) % 255) as i32 - 127
                }),
                bias: vec![0.0; 4],
                stride: 1,
                padding: 1,
                groups: 1,
                requant: Requant::new(aq, wq, aq),
            }),
            QLayer::MaxPool(MaxPool2d {
                kernel: 2,
                stride: 2,
                padding: 0,
            }),
            QLayer::GlobalAvgPool,
            QLayer::Fc(QFc {
                name: format!("fc-{seed}"),
                weights: Tensor::from_fn(&[3, 4], |i| ((i as u64 * 67 + seed) % 255) as i32 - 127),
                bias: vec![0.0; 3],
                dequant: aq.scale * wq.scale,
            }),
        ],
    };
    let samples: Vec<Sample> = (0..5)
        .map(|s| Sample {
            image: Tensor::from_fn(&[1, 8, 8], |i| {
                ((s as u64 * 37 + i as u64 * 11 + seed) % 256) as f32 / 255.0
            }),
            label: s % 3,
        })
        .collect();
    (net, samples)
}

proptest! {
    /// Terminal-state accounting holds for every policy, queue bound,
    /// fleet shape, arrival process and seed: served + dropped +
    /// degraded == offered == requests, the shed breakdown sums to the
    /// drop total, the bounded queue never exceeds its bound, and only
    /// the policy's own shed causes fire.
    #[test]
    fn prop_shed_accounting_is_exhaustive_and_exclusive(
        policy_idx in 0usize..=3,
        instances in 1usize..=3,
        max_batch in 1usize..=4,
        cap in 0usize..=3, // 0 = unbounded
        requests in 1usize..=32,
        arrival_kind in 0u8..=2, // 0 closed loop, 1 Poisson, 2 trace replay
        load_x10 in 3u64..=40, // offered load, tenths of capacity
        seed in 0u64..=1000,
    ) {
        let model = shufflenet_v2();
        let slo = SimTime::from_ns(50_000 * (1 + seed % 8));
        let admission = [
            AdmissionPolicy::DropNewest,
            AdmissionPolicy::DropOldest,
            AdmissionPolicy::Deadline { slo },
            AdmissionPolicy::Degrade { fallback_bits: 4 },
        ][policy_idx];
        let base = ServingConfig::saturation(
            AcceleratorConfig::sconna(),
            instances,
            max_batch,
            requests,
        );
        let capacity = base.estimated_capacity_fps(&model);
        let arrivals = match arrival_kind {
            0 => ArrivalProcess::ClosedLoop { clients: 1 + (seed % 8) as usize },
            1 => ArrivalProcess::Poisson { rate_fps: capacity * load_x10 as f64 / 10.0 },
            _ => {
                // An unsorted replay at roughly the drawn load: request i
                // lands at a hashed offset within the window the Poisson
                // process would have used.
                let window_ps =
                    (requests as f64 / (capacity * load_x10 as f64 / 10.0) * 1e12) as u64;
                ArrivalProcess::Trace {
                    times: (0..requests as u64)
                        .map(|i| {
                            let h = (i + 1)
                                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                .wrapping_add(seed);
                            SimTime::from_ps(h % window_ps.max(1))
                        })
                        .collect(),
                }
            }
        };
        let cfg = ServingConfig {
            queue_cap: (cap > 0).then_some(cap),
            admission,
            arrivals,
            seed,
            ..base
        };
        let r = simulate_serving(&cfg, &model);

        // Exhaustive accounting.
        prop_assert_eq!(r.offered, requests as u64);
        prop_assert_eq!(r.completed + r.dropped + r.degraded, r.offered);
        // No fault injection here, so the stranded and retry causes are
        // identically zero and the admission causes sum to the total.
        prop_assert_eq!(r.shed.stranded + r.shed.retry, 0);
        prop_assert_eq!(
            r.shed.newest + r.shed.oldest + r.shed.deadline + r.shed.stranded + r.shed.retry,
            r.dropped
        );
        prop_assert_eq!(r.shed.degraded, r.degraded);
        prop_assert!((r.drop_rate - r.dropped as f64 / r.offered as f64).abs() < 1e-12);
        prop_assert_eq!(r.latency.count as u64, r.completed + r.degraded);

        // Only the policy's own shed causes fire.
        match admission {
            AdmissionPolicy::DropNewest => {
                prop_assert_eq!(r.shed.oldest + r.shed.deadline + r.shed.degraded, 0);
            }
            AdmissionPolicy::DropOldest => {
                prop_assert_eq!(r.shed.newest + r.shed.deadline + r.shed.degraded, 0);
            }
            AdmissionPolicy::Deadline { .. } => {
                prop_assert_eq!(r.shed.oldest + r.shed.degraded, 0);
            }
            AdmissionPolicy::Degrade { .. } => {
                prop_assert_eq!(r.dropped, 0, "Degrade never drops");
            }
        }

        // The queue bound holds everywhere except the Degrade overflow
        // tier, which deliberately admits past the cap.
        if let Some(c) = cfg.queue_cap {
            if !matches!(admission, AdmissionPolicy::Degrade { .. }) {
                prop_assert!(
                    r.queue_depth.max_depth() <= c * instances,
                    "depth {} over bound {}",
                    r.queue_depth.max_depth(),
                    c * instances
                );
            }
        }

        // Without a cap, only Deadline can shed — and nothing degrades.
        if cfg.queue_cap.is_none() {
            prop_assert_eq!(r.shed.newest + r.shed.oldest + r.shed.degraded, 0);
        }
    }

    /// An infinite (or absent) queue bound under `DropNewest` is the
    /// pre-overload scheduler: the regression pin that the admission
    /// machinery costs nothing when it is not engaged. `Some(huge)` and
    /// `None` must be bit-identical, shed-free reports.
    #[test]
    fn prop_drop_newest_with_infinite_cap_is_the_unbounded_scheduler(
        instances in 1usize..=3,
        max_batch in 1usize..=4,
        requests in 1usize..=24,
        open in 0u8..=1,
        seed in 0u64..=500,
    ) {
        let model = shufflenet_v2();
        let base = ServingConfig::saturation(
            AcceleratorConfig::sconna(),
            instances,
            max_batch,
            requests,
        );
        let arrivals = if open == 1 {
            ArrivalProcess::Poisson {
                rate_fps: base.estimated_capacity_fps(&model) * (0.5 + (seed % 5) as f64),
            }
        } else {
            base.arrivals.clone()
        };
        let unbounded = simulate_serving(
            &ServingConfig { arrivals: arrivals.clone(), seed, ..base.clone() },
            &model,
        );
        let infinite = simulate_serving(
            &ServingConfig { queue_cap: Some(usize::MAX / 2), arrivals, seed, ..base },
            &model,
        );
        prop_assert_eq!(format!("{unbounded:?}"), format!("{infinite:?}"));
        prop_assert_eq!(unbounded.dropped + unbounded.degraded, 0);
        prop_assert_eq!(unbounded.completed, requests as u64);
    }

    /// Terminal-state accounting holds *per tenant* under every
    /// admission policy, scheduler and mixed arrival processes: each
    /// tenant's served + dropped + degraded == its offered == its
    /// request budget, its shed breakdown sums to its drop total, and
    /// every column sums over tenants to the fleet figure.
    #[test]
    fn prop_multi_tenant_shed_accounting_is_exhaustive_per_tenant(
        policy_idx in 0usize..=3,
        sched_idx in 0usize..=2,
        split in 1usize..=23,
        cap in 0usize..=3, // 0 = unbounded
        arrival_b in 0u8..=1, // tenant b: 0 closed loop, 1 Poisson
        load_x10 in 3u64..=40,
        seed in 0u64..=1000,
    ) {
        let model = shufflenet_v2();
        let requests = 24usize;
        let slo = SimTime::from_ns(50_000 * (1 + seed % 8));
        let admission = [
            AdmissionPolicy::DropNewest,
            AdmissionPolicy::DropOldest,
            AdmissionPolicy::Deadline { slo },
            AdmissionPolicy::Degrade { fallback_bits: 4 },
        ][policy_idx];
        let scheduler = [
            TenantScheduler::WeightedFair,
            TenantScheduler::StrictPriority,
            TenantScheduler::SharedFifo,
        ][sched_idx];
        let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 2, requests);
        let capacity = base.estimated_capacity_fps(&model);
        let arrivals_b = if arrival_b == 0 {
            ArrivalProcess::ClosedLoop { clients: 1 + (seed % 4) as usize }
        } else {
            ArrivalProcess::Poisson { rate_fps: capacity * load_x10 as f64 / 10.0 }
        };
        let cfg = ServingConfig {
            queue_cap: (cap > 0).then_some(cap),
            admission,
            seed,
            ..base
        }
        .with_tenants(vec![
            TenantSpec::new("a", 0, ArrivalProcess::ClosedLoop { clients: 2 }, split)
                .with_weight(4.0),
            TenantSpec::new("b", 0, arrivals_b, requests - split),
        ])
        .with_tenant_scheduler(scheduler);
        let r = Fleet::new_multi(&cfg, &[&model]).into_report();

        prop_assert_eq!(r.offered, requests as u64);
        prop_assert_eq!(r.tenants.len(), 2);
        let budgets = [split as u64, (requests - split) as u64];
        for (t, budget) in r.tenants.iter().zip(budgets) {
            prop_assert_eq!(t.offered, budget, "tenant {} budget", t.name);
            prop_assert_eq!(
                t.completed + t.dropped + t.degraded, t.offered,
                "tenant {} accounting", t.name
            );
            prop_assert_eq!(
                t.shed.newest + t.shed.oldest + t.shed.deadline + t.shed.stranded + t.shed.retry,
                t.dropped,
                "tenant {} shed breakdown", t.name
            );
            prop_assert_eq!(t.shed.degraded, t.degraded);
            prop_assert_eq!(t.latency.count as u64, t.completed + t.degraded);
        }
        let sum = |f: fn(&sconna::accel::serve::TenantUsage) -> u64| {
            r.tenants.iter().map(f).sum::<u64>()
        };
        prop_assert_eq!(sum(|t| t.offered), r.offered);
        prop_assert_eq!(sum(|t| t.completed), r.completed);
        prop_assert_eq!(sum(|t| t.dropped), r.dropped);
        prop_assert_eq!(sum(|t| t.degraded), r.degraded);
        prop_assert_eq!(sum(|t| t.shed.newest), r.shed.newest);
        prop_assert_eq!(sum(|t| t.shed.oldest), r.shed.oldest);
        prop_assert_eq!(sum(|t| t.shed.deadline), r.shed.deadline);
        prop_assert_eq!(sum(|t| t.shed.stranded), r.shed.stranded);
        prop_assert_eq!(sum(|t| t.shed.retry), r.shed.retry);
        prop_assert_eq!(sum(|t| t.shed.degraded), r.shed.degraded);
        prop_assert_eq!(sum(|t| t.batches), r.batches);
    }
}

/// The open-loop half of the capacity pin: the overload sweep's goodput
/// tracks the offered load below the closed-form capacity estimate and
/// plateaus at it above — the knee `ServingConfig::estimated_capacity_fps`
/// names and `ServingConfig::saturation` measures.
#[test]
fn overload_sweep_knee_sits_at_the_capacity_estimate() {
    let (net, samples) = tiny_workload(3);
    let engine = SconnaEngine::paper_default(3);
    let model = shufflenet_v2();
    // Deep enough that queue wait (not the flush window) dominates the
    // tail past the knee — the regime where p99 visibly collapses.
    let base = ServingConfig {
        queue_cap: Some(16),
        seed: 11,
        ..ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 192)
    };
    let capacity = base.estimated_capacity_fps(&model);
    let workload = FunctionalWorkload {
        net: &net,
        fallback: None,
        fallback_engine: None,
        samples: &samples,
        engine: &engine,
        workers: 1,
    };
    let rates = [
        0.4 * capacity,
        0.8 * capacity,
        2.0 * capacity,
        4.0 * capacity,
    ];
    let points = overload_sweep(&base, &model, &workload, &rates, 2);

    // Below the knee: goodput ≈ offered, nothing sheds.
    for p in &points[..2] {
        assert_eq!(p.report.serving.dropped, 0, "shedding below the knee");
        let ratio = p.report.serving.goodput_fps / p.offered_fps;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "goodput {:.0} vs offered {:.0} below the knee",
            p.report.serving.goodput_fps,
            p.offered_fps
        );
    }
    // Past the knee: goodput plateaus at capacity while drops grow.
    for p in &points[2..] {
        assert!(
            p.report.serving.dropped > 0,
            "no shedding at {:.0} fps",
            p.offered_fps
        );
        let ratio = p.report.serving.goodput_fps / capacity;
        assert!(
            (0.8..=1.1).contains(&ratio),
            "goodput {:.0} should plateau at capacity {:.0}",
            p.report.serving.goodput_fps,
            capacity
        );
    }
    assert!(
        points[3].report.serving.drop_rate > points[2].report.serving.drop_rate,
        "drop rate must grow with offered load past the knee"
    );
    // Tail collapse: past the knee the queue pins at its bound, so every
    // response pays the full-queue wait — far above the below-knee tail.
    let p99_over = points[3].report.serving.latency.p99;
    let p99_under = points[0].report.serving.latency.p99;
    assert!(
        p99_over.as_ps() >= 2 * p99_under.as_ps(),
        "overload must collapse the tail: {p99_over} vs {p99_under} below the knee"
    );
}
