//! Parity guarantees of the batched inference path: `vdp_batch` tiles,
//! the im2col patch gather, and block-parallel conv forward must all be
//! bit-identical to their single-vector / per-pixel references — for the
//! exact engine, the noiseless stochastic engine, and the noisy engine
//! with keyed ADC error. The weight-stationary extensions obey the same
//! bar: `PreparedWeights` tiles and whole-batch stacked tiles must be
//! bit-equal to the unprepared per-request paths.

use proptest::prelude::*;
use sconna::accel::SconnaEngine;
use sconna::photonics::pca::AdcModel;
use sconna::sc::Precision;
use sconna::tensor::arena::BatchArena;
use sconna::tensor::engine::{combine_keys, ExactEngine, PatchMatrix, VdpEngine, WeightMatrix};
use sconna::tensor::layers::QConv2d;
use sconna::tensor::quant::{ActivationQuant, Requant, WeightQuant};
use sconna::tensor::Tensor;

fn unit_requant() -> Requant {
    Requant::new(
        ActivationQuant {
            scale: 1.0,
            bits: 8,
        },
        WeightQuant {
            scale: 1.0,
            bits: 8,
        },
        ActivationQuant {
            scale: 1.0,
            bits: 8,
        },
    )
}

/// Asserts the `vdp_batch` contract on one engine: entry `(p, k)` equals
/// the single-vector call under the combined key, bit for bit — and the
/// weight-stationary `vdp_batch_prepared` path reproduces the same tile
/// exactly.
fn assert_batch_parity(
    engine: &dyn VdpEngine,
    patches: &PatchMatrix,
    wm: &WeightMatrix<'_>,
    keys: &[u64],
) {
    let got = engine.vdp_batch(patches, wm, keys);
    assert_eq!(got.len(), patches.rows() * wm.rows());
    for p in 0..patches.rows() {
        for k in 0..wm.rows() {
            let want = engine.vdp_keyed(patches.row(p), wm.row(k), combine_keys(keys[p], k as u64));
            assert_eq!(
                got[p * wm.rows() + k].to_bits(),
                want.to_bits(),
                "{}: tile entry ({p}, {k}) diverged from per-vector path",
                engine.name()
            );
        }
    }
    let prepared = engine.prepare_weights(wm);
    let fast = engine.vdp_batch_prepared(patches, &prepared, keys);
    assert_eq!(
        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "{}: prepared tile diverged from raw tile",
        engine.name()
    );
}

proptest! {
    /// Tile ≡ per-vector for both engines across precisions, VDPE sizes
    /// (ragged tail chunks included) and ADC on/off.
    #[test]
    fn prop_vdp_batch_matches_per_vector(
        bits in 2u8..=9,
        vdpe in 3usize..=40,
        cols in 0usize..=90,
        rows in 1usize..=4,
        kernels in 1usize..=6,
        seed in 0u64..=1000,
        noisy in 0u8..=1,
    ) {
        let noisy = noisy == 1;
        let precision = Precision::new(bits);
        let qmax = precision.max_value();
        let patches = PatchMatrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| (i as u32 * 37 + seed as u32) % (qmax + 1)).collect(),
        );
        let wdata: Vec<i32> = (0..kernels * cols)
            .map(|i| ((i as i64 * 53 + seed as i64) % (2 * qmax as i64 + 1)) as i32 - qmax as i32)
            .collect();
        let wm = WeightMatrix::new(&wdata, kernels, cols);
        let keys: Vec<u64> = (0..rows as u64).map(|p| p.wrapping_mul(seed | 1)).collect();

        let adc = noisy.then(AdcModel::sconna_default);
        let sconna = SconnaEngine::new(precision, vdpe, adc, seed);
        assert_batch_parity(&sconna, &patches, &wm, &keys);
        assert_batch_parity(&ExactEngine, &patches, &wm, &keys);
    }

    /// im2col + batched tiles ≡ per-pixel gather + single-vector calls on
    /// random conv geometries (stride / padding / groups / kernel size),
    /// and the block-parallel forward is worker-count invariant — all
    /// checked on the *noisy* engine, where any key or gather mismatch
    /// shows up as a bit difference.
    #[test]
    fn prop_conv_forward_matches_reference_gather(
        d_g in 1usize..=3,
        groups in 1usize..=3,
        kpg in 1usize..=3,
        k in 1usize..=2,
        stride in 1usize..=2,
        padding in 0usize..=1,
        extra_h in 0usize..=5,
        extra_w in 0usize..=5,
        seed in 0u64..=500,
        noisy in 0u8..=1,
    ) {
        let noisy = noisy == 1;
        let k = 2 * k - 1; // kernel side 1 or 3
        let d_in = d_g * groups;
        let l = kpg * groups;
        let (h, w) = (k + extra_h, k + extra_w);
        let conv = QConv2d {
            name: format!("prop-{seed}"),
            weights: Tensor::from_fn(&[l, d_g, k, k], |i| ((i as i64 + seed as i64) % 255) as i32 - 127),
            bias: (0..l).map(|b| b as f64 - 1.0).collect(),
            stride,
            padding,
            groups,
            requant: unit_requant(),
        };
        let input = Tensor::<u32>::from_fn(&[d_in, h, w], |i| ((i as u64 * 31 + seed) % 256) as u32);

        let engine: Box<dyn VdpEngine> = if noisy {
            Box::new(SconnaEngine::paper_default(seed))
        } else {
            Box::new(ExactEngine)
        };
        let reference = conv.forward_reference(&input, engine.as_ref());
        let batched = conv.forward(&input, engine.as_ref());
        prop_assert_eq!(reference.as_slice(), batched.as_slice());

        for workers in [2usize, 8] {
            let parallel = conv.forward_keyed(&input, engine.as_ref(), conv.layer_key(), workers);
            prop_assert_eq!(batched.as_slice(), parallel.as_slice(), "workers {}", workers);
        }
    }

    /// The weight-stationary serving path — prepared per-group handles +
    /// the im2col patches of a whole request batch stacked into one tile
    /// — must be bit-equal to running each request through the plain
    /// per-request `forward_keyed`, for every worker count, on random
    /// conv geometries and batch compositions, with and without ADC
    /// noise.
    #[test]
    fn prop_prepared_batch_tiles_match_per_request_forward(
        d_g in 1usize..=2,
        groups in 1usize..=3,
        kpg in 1usize..=3,
        k in 1usize..=2,
        stride in 1usize..=2,
        padding in 0usize..=1,
        extra in 0usize..=4,
        n_images in 1usize..=4,
        seed in 0u64..=500,
        noisy in 0u8..=1,
    ) {
        let noisy = noisy == 1;
        let k = 2 * k - 1; // kernel side 1 or 3
        let d_in = d_g * groups;
        let l = kpg * groups;
        let (h, w) = (k + extra, k + 1);
        let conv = QConv2d {
            name: format!("prep-{seed}"),
            weights: Tensor::from_fn(&[l, d_g, k, k], |i| ((i as i64 * 3 + seed as i64) % 255) as i32 - 127),
            bias: (0..l).map(|b| b as f64 * 0.5).collect(),
            stride,
            padding,
            groups,
            requant: unit_requant(),
        };
        let images: Vec<Tensor<u32>> = (0..n_images)
            .map(|b| Tensor::<u32>::from_fn(&[d_in, h, w], |i| ((i as u64 * 23 + seed + b as u64 * 101) % 256) as u32))
            .collect();
        let base_keys: Vec<u64> = (0..n_images as u64).map(|b| seed.wrapping_mul(31).wrapping_add(b * 7919)).collect();

        let engine: Box<dyn VdpEngine> = if noisy {
            Box::new(SconnaEngine::paper_default(seed))
        } else {
            Box::new(ExactEngine)
        };
        // Per-request reference: plain unprepared single-image forwards.
        let singles: Vec<Tensor<u32>> = images
            .iter()
            .zip(&base_keys)
            .map(|(im, &bk)| conv.forward_keyed(im, engine.as_ref(), bk, 1))
            .collect();

        let prepared = conv.prepare(engine.as_ref());
        let refs: Vec<&Tensor<u32>> = images.iter().collect();
        for workers in [1usize, 2, 8] {
            let stacked = conv.forward_batch_keyed(&refs, engine.as_ref(), Some(&prepared), &base_keys, workers);
            prop_assert_eq!(stacked.len(), singles.len());
            for (b, (got, want)) in stacked.iter().zip(&singles).enumerate() {
                prop_assert_eq!(got.as_slice(), want.as_slice(), "image {} workers {}", b, workers);
            }
        }
        // Single-image prepared forward is the same contract at batch 1.
        let one = conv.forward_prepared_keyed(&images[0], engine.as_ref(), &prepared, base_keys[0], 2);
        prop_assert_eq!(one.as_slice(), singles[0].as_slice());

        // Arena-reused scratch is observationally pure: running the same
        // batch repeatedly through one (increasingly dirty) arena, at any
        // worker count, must reproduce the allocating path bit-for-bit.
        let arena = BatchArena::new();
        for workers in [1usize, 2, 8] {
            let pooled = conv.forward_batch_keyed_in(
                &refs, engine.as_ref(), Some(&prepared), &base_keys, workers, &arena);
            for (b, (got, want)) in pooled.iter().zip(&singles).enumerate() {
                prop_assert_eq!(got.as_slice(), want.as_slice(), "arena image {} workers {}", b, workers);
            }
            // Recycle the outputs so the next round draws dirty buffers.
            for t in pooled {
                arena.recycle(t);
            }
        }
    }

    /// Whole-network arena threading: `forward_batch_in` through one
    /// long-lived arena (dirtied across calls, layers and images — the
    /// serving-instance usage) is bit-identical to the allocating
    /// `forward_batch`, logits compared exactly.
    #[test]
    fn prop_network_forward_batch_in_arena_is_bit_identical(
        n_images in 1usize..=3,
        seed in 0u64..=200,
        noisy in 0u8..=1,
    ) {
        let noisy = noisy == 1;
        let aq = ActivationQuant { scale: 1.0 / 255.0, bits: 8 };
        let wq = WeightQuant { scale: 1.0 / 127.0, bits: 8 };
        let net = sconna::tensor::network::QuantizedNetwork {
            input_quant: aq,
            layers: vec![
                sconna::tensor::network::QLayer::Conv(QConv2d {
                    name: format!("net-c1-{seed}"),
                    weights: Tensor::from_fn(&[4, 1, 3, 3], |i| ((i as u64 * 29 + seed) % 255) as i32 - 127),
                    bias: vec![0.0; 4],
                    stride: 1,
                    padding: 1,
                    groups: 1,
                    requant: Requant::new(aq, wq, aq),
                }),
                sconna::tensor::network::QLayer::MaxPool(sconna::tensor::layers::MaxPool2d {
                    kernel: 2,
                    stride: 2,
                    padding: 0,
                }),
                sconna::tensor::network::QLayer::GlobalAvgPool,
                sconna::tensor::network::QLayer::Fc(sconna::tensor::layers::QFc {
                    name: format!("net-fc-{seed}"),
                    weights: Tensor::from_fn(&[3, 4], |i| ((i as u64 * 67 + seed) % 255) as i32 - 127),
                    bias: vec![0.0; 3],
                    dequant: aq.scale * wq.scale,
                }),
            ],
        };
        let engine: Box<dyn VdpEngine> = if noisy {
            Box::new(SconnaEngine::paper_default(seed))
        } else {
            Box::new(ExactEngine)
        };
        let prepared = net.prepare(engine.as_ref());
        let images: Vec<Tensor<f32>> = (0..n_images)
            .map(|b| Tensor::from_fn(&[1, 12, 12], |i| ((i as u64 * 13 + seed + b as u64 * 71) % 256) as f32 / 255.0))
            .collect();
        let refs: Vec<&Tensor<f32>> = images.iter().collect();
        let keys: Vec<u64> = (0..n_images as u64).map(|b| seed.wrapping_add(b * 977)).collect();

        let want = prepared.forward_batch(&refs, &keys, 1);
        let arena = BatchArena::new();
        for round in 0..3 {
            for workers in [1usize, 2, 8] {
                let got = prepared.forward_batch_in(&refs, &keys, workers, &arena);
                prop_assert_eq!(&got, &want, "round {} workers {}", round, workers);
            }
        }
    }
}
