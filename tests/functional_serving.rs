//! Functional-serving guarantees: a fleet that *executes* its requests
//! must compute exactly what the offline per-request forward computes —
//! predictions keyed per request id, invariant under fleet size, batch
//! packing, arrival ordering (closed-loop vs Poisson, any seed) and
//! worker count — and the whole-network prepared/stacked forward must be
//! bit-equal to the per-request path.

use proptest::prelude::*;
use sconna::accel::serve::{
    simulate_serving_functional, ArrivalProcess, FunctionalWorkload, ServingConfig,
};
use sconna::accel::{AcceleratorConfig, SconnaEngine};
use sconna::tensor::dataset::Sample;
use sconna::tensor::engine::{ExactEngine, VdpEngine};
use sconna::tensor::layers::{MaxPool2d, QConv2d, QFc};
use sconna::tensor::models::shufflenet_v2;
use sconna::tensor::network::{QLayer, QuantizedNetwork};
use sconna::tensor::quant::{ActivationQuant, Requant, WeightQuant};
use sconna::tensor::Tensor;

/// A hand-built quantized CNN (weights from a hash, no training) plus a
/// labelled request population.
fn tiny_workload(seed: u64, classes: usize) -> (QuantizedNetwork, Vec<Sample>) {
    let aq = ActivationQuant { scale: 1.0 / 255.0, bits: 8 };
    let wq = WeightQuant { scale: 1.0 / 127.0, bits: 8 };
    let net = QuantizedNetwork {
        input_quant: aq,
        layers: vec![
            QLayer::Conv(QConv2d {
                name: format!("c1-{seed}"),
                weights: Tensor::from_fn(&[4, 1, 3, 3], |i| {
                    ((i as u64 * 29 + seed) % 255) as i32 - 127
                }),
                bias: vec![0.0; 4],
                stride: 1,
                padding: 1,
                groups: 1,
                requant: Requant::new(aq, wq, aq),
            }),
            QLayer::MaxPool(MaxPool2d { kernel: 2, stride: 2, padding: 0 }),
            QLayer::GlobalAvgPool,
            QLayer::Fc(QFc {
                name: format!("fc-{seed}"),
                weights: Tensor::from_fn(&[classes, 4], |i| {
                    ((i as u64 * 67 + seed) % 255) as i32 - 127
                }),
                bias: vec![0.0; classes],
                dequant: aq.scale * wq.scale,
            }),
        ],
    };
    let samples: Vec<Sample> = (0..5)
        .map(|s| Sample {
            image: Tensor::from_fn(&[1, 8, 8], |i| {
                ((s as u64 * 37 + i as u64 * 11 + seed) % 256) as f32 / 255.0
            }),
            label: s % classes,
        })
        .collect();
    (net, samples)
}

/// Offline reference: request `r`'s prediction from a plain (unprepared,
/// unstacked) per-request forward under image key `r`.
fn offline_predictions(
    net: &QuantizedNetwork,
    samples: &[Sample],
    engine: &dyn VdpEngine,
    requests: usize,
) -> Vec<usize> {
    (0..requests)
        .map(|r| {
            let s = &samples[r % samples.len()];
            sconna::tensor::layers::argmax(&net.forward_keyed(&s.image, engine, r as u64))
        })
        .collect()
}

proptest! {
    /// Fleet accuracy-under-load is a pure function of the workload:
    /// identical across 1/2/8 instance workers, fleet shapes, and
    /// arrival orderings (closed-loop saturation and Poisson at any
    /// rate/seed) — and every prediction equals the offline per-request
    /// forward.
    #[test]
    fn prop_accuracy_under_load_is_schedule_invariant(
        seed in 0u64..=200,
        requests in 1usize..=24,
        instances in 1usize..=4,
        max_batch in 1usize..=8,
        rate_idx in 0usize..=2,
        arrival_seed in 0u64..=50,
        noisy in 0u8..=1,
    ) {
        let (net, samples) = tiny_workload(seed, 3);
        let exact = ExactEngine;
        let sconna = SconnaEngine::paper_default(seed);
        let engine: &dyn VdpEngine = if noisy == 1 { &sconna } else { &exact };
        let offline = offline_predictions(&net, &samples, engine, requests);
        let expected_correct = offline
            .iter()
            .enumerate()
            .filter(|&(r, &p)| p == samples[r % samples.len()].label)
            .count() as u64;

        let model = shufflenet_v2();
        for workers in [1usize, 2, 8] {
            let workload = FunctionalWorkload {
                net: &net,
                samples: &samples,
                engine,
                workers,
            };
            // Closed-loop saturation ordering.
            let closed = simulate_serving_functional(
                &ServingConfig::saturation(
                    AcceleratorConfig::sconna(),
                    instances,
                    max_batch,
                    requests,
                ),
                &model,
                &workload,
            );
            prop_assert_eq!(&closed.predictions, &offline, "closed loop, {} workers", workers);
            prop_assert_eq!(closed.correct, expected_correct);
            // Open-loop Poisson ordering at a workload-dependent rate.
            let rate = [200.0f64, 1000.0, 5000.0][rate_idx];
            let poisson = simulate_serving_functional(
                &ServingConfig {
                    arrivals: ArrivalProcess::Poisson { rate_fps: rate },
                    seed: arrival_seed,
                    ..ServingConfig::saturation(
                        AcceleratorConfig::sconna(),
                        instances,
                        max_batch,
                        requests,
                    )
                },
                &model,
                &workload,
            );
            prop_assert_eq!(&poisson.predictions, &offline, "poisson, {} workers", workers);
            prop_assert_eq!(
                poisson.accuracy_under_load.to_bits(),
                closed.accuracy_under_load.to_bits()
            );
        }
    }

    /// The prepared whole-network stacked forward is bit-equal to the
    /// plain per-request forward for any batch composition and worker
    /// count — the network-level half of the serving guarantee.
    #[test]
    fn prop_prepared_network_batch_matches_per_request(
        seed in 0u64..=300,
        n_images in 1usize..=5,
        noisy in 0u8..=1,
    ) {
        let (net, samples) = tiny_workload(seed, 4);
        let exact = ExactEngine;
        let sconna = SconnaEngine::paper_default(seed ^ 0xABCD);
        let engine: &dyn VdpEngine = if noisy == 1 { &sconna } else { &exact };
        let images: Vec<&Tensor<f32>> = (0..n_images).map(|b| &samples[b % samples.len()].image).collect();
        let keys: Vec<u64> = (0..n_images as u64).map(|b| b * 997 + seed).collect();
        let singles: Vec<Vec<f32>> = images
            .iter()
            .zip(&keys)
            .map(|(im, &k)| net.forward_keyed(im, engine, k))
            .collect();
        let prepared = net.prepare(engine);
        for workers in [1usize, 2, 8] {
            let stacked = prepared.forward_batch(&images, &keys, workers);
            prop_assert_eq!(&stacked, &singles, "{} workers", workers);
        }
    }
}
