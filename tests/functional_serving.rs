//! Functional-serving guarantees: a fleet that *executes* its requests
//! must compute exactly what the offline per-request forward computes —
//! predictions keyed per request id, invariant under fleet size, batch
//! packing, arrival ordering (closed-loop vs Poisson, any seed) and
//! worker count — and the whole-network prepared/stacked forward must be
//! bit-equal to the per-request path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sconna::accel::serve::{
    simulate_serving_functional, AdmissionPolicy, ArrivalProcess, FunctionalWorkload, ServingConfig,
};
use sconna::accel::{AcceleratorConfig, SconnaEngine};
use sconna::sim::time::SimTime;
use sconna::tensor::dataset::Sample;
use sconna::tensor::engine::{ExactEngine, VdpEngine};
use sconna::tensor::layers::{MaxPool2d, QConv2d, QFc};
use sconna::tensor::models::shufflenet_v2;
use sconna::tensor::network::{QLayer, QuantizedNetwork};
use sconna::tensor::quant::{ActivationQuant, Requant, WeightQuant};
use sconna::tensor::Tensor;

/// A hand-built quantized CNN (weights from a hash, no training) plus a
/// labelled request population.
fn tiny_workload(seed: u64, classes: usize) -> (QuantizedNetwork, Vec<Sample>) {
    let aq = ActivationQuant {
        scale: 1.0 / 255.0,
        bits: 8,
    };
    let wq = WeightQuant {
        scale: 1.0 / 127.0,
        bits: 8,
    };
    let net = QuantizedNetwork {
        input_quant: aq,
        layers: vec![
            QLayer::Conv(QConv2d {
                name: format!("c1-{seed}"),
                weights: Tensor::from_fn(&[4, 1, 3, 3], |i| {
                    ((i as u64 * 29 + seed) % 255) as i32 - 127
                }),
                bias: vec![0.0; 4],
                stride: 1,
                padding: 1,
                groups: 1,
                requant: Requant::new(aq, wq, aq),
            }),
            QLayer::MaxPool(MaxPool2d {
                kernel: 2,
                stride: 2,
                padding: 0,
            }),
            QLayer::GlobalAvgPool,
            QLayer::Fc(QFc {
                name: format!("fc-{seed}"),
                weights: Tensor::from_fn(&[classes, 4], |i| {
                    ((i as u64 * 67 + seed) % 255) as i32 - 127
                }),
                bias: vec![0.0; classes],
                dequant: aq.scale * wq.scale,
            }),
        ],
    };
    let samples: Vec<Sample> = (0..5)
        .map(|s| Sample {
            image: Tensor::from_fn(&[1, 8, 8], |i| {
                ((s as u64 * 37 + i as u64 * 11 + seed) % 256) as f32 / 255.0
            }),
            label: s % classes,
        })
        .collect();
    (net, samples)
}

/// Offline reference: request `r`'s prediction from a plain (unprepared,
/// unstacked) per-request forward under image key `r`.
fn offline_predictions(
    net: &QuantizedNetwork,
    samples: &[Sample],
    engine: &dyn VdpEngine,
    requests: usize,
) -> Vec<usize> {
    (0..requests)
        .map(|r| {
            let s = &samples[r % samples.len()];
            sconna::tensor::layers::argmax(&net.forward_keyed(&s.image, engine, r as u64))
        })
        .collect()
}

proptest! {
    /// Fleet accuracy-under-load is a pure function of the workload:
    /// identical across 1/2/8 instance workers, fleet shapes, and
    /// arrival orderings (closed-loop saturation and Poisson at any
    /// rate/seed) — and every prediction equals the offline per-request
    /// forward.
    #[test]
    fn prop_accuracy_under_load_is_schedule_invariant(
        seed in 0u64..=200,
        requests in 1usize..=24,
        instances in 1usize..=4,
        max_batch in 1usize..=8,
        rate_idx in 0usize..=2,
        arrival_seed in 0u64..=50,
        noisy in 0u8..=1,
    ) {
        let (net, samples) = tiny_workload(seed, 3);
        let exact = ExactEngine;
        let sconna = SconnaEngine::paper_default(seed);
        let engine: &dyn VdpEngine = if noisy == 1 { &sconna } else { &exact };
        let offline = offline_predictions(&net, &samples, engine, requests);
        let expected_correct = offline
            .iter()
            .enumerate()
            .filter(|&(r, &p)| p == samples[r % samples.len()].label)
            .count() as u64;

        let model = shufflenet_v2();
        for workers in [1usize, 2, 8] {
            let workload = FunctionalWorkload {
                net: &net,
                fallback: None,
                fallback_engine: None,
                samples: &samples,
                engine,
                workers,
            };
            // Closed-loop saturation ordering.
            let closed = simulate_serving_functional(
                &ServingConfig::saturation(
                    AcceleratorConfig::sconna(),
                    instances,
                    max_batch,
                    requests,
                ),
                &model,
                &workload,
            );
            prop_assert_eq!(&closed.predictions, &offline, "closed loop, {} workers", workers);
            prop_assert_eq!(closed.correct, expected_correct);
            // Open-loop Poisson ordering at a workload-dependent rate.
            let rate = [200.0f64, 1000.0, 5000.0][rate_idx];
            let poisson = simulate_serving_functional(
                &ServingConfig {
                    arrivals: ArrivalProcess::Poisson { rate_fps: rate },
                    seed: arrival_seed,
                    ..ServingConfig::saturation(
                        AcceleratorConfig::sconna(),
                        instances,
                        max_batch,
                        requests,
                    )
                },
                &model,
                &workload,
            );
            prop_assert_eq!(&poisson.predictions, &offline, "poisson, {} workers", workers);
            prop_assert_eq!(
                poisson.accuracy_under_load.to_bits(),
                closed.accuracy_under_load.to_bits()
            );
        }
    }

    /// The prepared whole-network stacked forward is bit-equal to the
    /// plain per-request forward for any batch composition and worker
    /// count — the network-level half of the serving guarantee.
    #[test]
    fn prop_prepared_network_batch_matches_per_request(
        seed in 0u64..=300,
        n_images in 1usize..=5,
        noisy in 0u8..=1,
    ) {
        let (net, samples) = tiny_workload(seed, 4);
        let exact = ExactEngine;
        let sconna = SconnaEngine::paper_default(seed ^ 0xABCD);
        let engine: &dyn VdpEngine = if noisy == 1 { &sconna } else { &exact };
        let images: Vec<&Tensor<f32>> = (0..n_images).map(|b| &samples[b % samples.len()].image).collect();
        let keys: Vec<u64> = (0..n_images as u64).map(|b| b * 997 + seed).collect();
        let singles: Vec<Vec<f32>> = images
            .iter()
            .zip(&keys)
            .map(|(im, &k)| net.forward_keyed(im, engine, k))
            .collect();
        let prepared = net.prepare(engine);
        for workers in [1usize, 2, 8] {
            let stacked = prepared.forward_batch(&images, &keys, workers);
            prop_assert_eq!(&stacked, &singles, "{} workers", workers);
        }
    }
}

/// Draws `n` Poisson arrival times at `rate_fps` — the same exponential
/// inter-arrival construction the scheduler uses, materialized so the
/// trace can be replayed in any insertion order.
fn poisson_times(n: usize, rate_fps: f64, seed: u64) -> Vec<SimTime> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate_fps;
            SimTime::from_secs_f64(t)
        })
        .collect()
}

/// Determinism of the overload path: for every admission policy the full
/// [`sconna::accel::serve::FunctionalServingReport`] — predictions, shed
/// sets (`outcomes`), queue-depth series, every counter — is bit-identical
/// across 1/2/8 instance workers and across shuffled insertion orders of
/// the same Poisson arrival trace (ids bind to arrival *times*, not to
/// schedule order).
#[test]
fn overload_reports_are_worker_and_arrival_order_invariant() {
    let (net, samples) = tiny_workload(13, 3);
    let fallback = net.with_weight_bits(4);
    let engine = SconnaEngine::paper_default(13);
    let model = shufflenet_v2();
    let requests = 40;

    let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, requests);
    let capacity = base.estimated_capacity_fps(&model);
    let times = poisson_times(requests, 1.8 * capacity, 99);
    let mut shuffled = times.clone();
    shuffled.reverse();
    shuffled.rotate_left(11);

    let policies = [
        AdmissionPolicy::DropNewest,
        AdmissionPolicy::DropOldest,
        AdmissionPolicy::Deadline {
            slo: SimTime::from_ns(120_000),
        },
        AdmissionPolicy::Degrade { fallback_bits: 4 },
    ];
    for admission in policies {
        let cfg = |trace: Vec<SimTime>| ServingConfig {
            queue_cap: Some(2),
            admission,
            arrivals: ArrivalProcess::Trace { times: trace },
            ..base.clone()
        };
        let workload = |workers: usize| FunctionalWorkload {
            net: &net,
            fallback: Some(&fallback),
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers,
        };
        let baseline = simulate_serving_functional(&cfg(times.clone()), &model, &workload(1));
        // The overload config actually sheds — otherwise this pins nothing.
        assert!(
            baseline.serving.dropped + baseline.serving.degraded > 0,
            "{admission:?} at 1.8x load must shed"
        );
        let debug = format!("{baseline:?}");
        for workers in [2usize, 8] {
            let run = simulate_serving_functional(&cfg(times.clone()), &model, &workload(workers));
            assert_eq!(
                format!("{run:?}"),
                debug,
                "{admission:?}: {workers} workers diverged"
            );
        }
        let reordered = simulate_serving_functional(&cfg(shuffled.clone()), &model, &workload(2));
        assert_eq!(
            format!("{reordered:?}"),
            debug,
            "{admission:?}: shuffled arrival insertion order diverged"
        );
        // And the run is reproducible wholesale.
        let again = simulate_serving_functional(&cfg(times.clone()), &model, &workload(1));
        assert_eq!(format!("{again:?}"), debug, "{admission:?}: rerun diverged");
    }
}

/// Degraded predictions are pure functions of `(fallback net, engine,
/// sample, request id)`: whichever requests the schedule degrades, their
/// responses equal the offline fallback forward — and the full-fidelity
/// responses equal the offline primary forward.
#[test]
fn shed_and_degraded_responses_match_their_offline_references() {
    use sconna::accel::serve::RequestOutcome;
    let (net, samples) = tiny_workload(29, 3);
    let fallback = net.with_weight_bits(4);
    let engine = SconnaEngine::paper_default(29);
    let model = shufflenet_v2();
    let requests = 32;
    let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 1, 2, requests);
    let capacity = base.estimated_capacity_fps(&model);
    let cfg = ServingConfig {
        queue_cap: Some(1),
        admission: AdmissionPolicy::Degrade { fallback_bits: 4 },
        arrivals: ArrivalProcess::Poisson {
            rate_fps: 2.5 * capacity,
        },
        seed: 4,
        ..base
    };
    let workload = FunctionalWorkload {
        net: &net,
        fallback: Some(&fallback),
        fallback_engine: None,
        samples: &samples,
        engine: &engine,
        workers: 2,
    };
    let r = simulate_serving_functional(&cfg, &model, &workload);
    assert!(
        r.serving.degraded > 0,
        "2.5x load against a 1-deep queue must degrade"
    );
    assert_eq!(r.serving.dropped, 0);
    for (id, (&pred, &outcome)) in r.predictions.iter().zip(&r.outcomes).enumerate() {
        let s = &samples[id % samples.len()];
        let reference = match outcome {
            RequestOutcome::Served => &net,
            RequestOutcome::Degraded => &fallback,
            _ => panic!("no drops under Degrade"),
        };
        let offline =
            sconna::tensor::layers::argmax(&reference.forward_keyed(&s.image, &engine, id as u64));
        assert_eq!(pred, offline, "request {id} ({outcome:?})");
    }
}
