//! Reproducibility guarantees: every simulation and every seeded
//! stochastic component must be bit-identical across runs and across
//! parallel execution.

use sconna::accel::{simulate_inference, AcceleratorConfig, SconnaEngine};
use sconna::sim::parallel::{parallel_map, parallel_map_with};
use sconna::tensor::dataset::SyntheticDataset;
use sconna::tensor::engine::VdpEngine;
use sconna::tensor::models::{googlenet, shufflenet_v2};
use sconna::tensor::smallcnn::{SmallCnn, SmallCnnConfig};

#[test]
fn inference_simulation_is_deterministic() {
    let model = shufflenet_v2();
    for cfg in AcceleratorConfig::all() {
        let a = simulate_inference(&cfg, &model);
        let b = simulate_inference(&cfg, &model);
        assert_eq!(a.makespan, b.makespan, "{}", cfg.name);
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits(), "{}", cfg.name);
    }
}

#[test]
fn parallel_simulation_matches_serial() {
    let models = vec![googlenet(), shufflenet_v2()];
    let serial: Vec<u64> = models
        .iter()
        .map(|m| simulate_inference(&AcceleratorConfig::sconna(), m).makespan.as_ps())
        .collect();
    let parallel: Vec<u64> = parallel_map(models.clone(), |m| {
        simulate_inference(&AcceleratorConfig::sconna(), &m).makespan.as_ps()
    });
    assert_eq!(serial, parallel);
    let single_worker: Vec<u64> = parallel_map_with(models, 1, |m| {
        simulate_inference(&AcceleratorConfig::sconna(), &m).makespan.as_ps()
    });
    assert_eq!(serial, single_worker);
}

#[test]
fn training_is_seed_deterministic() {
    let data = SyntheticDataset::new(4, 12, 0.2, 9);
    let train = data.batch(10, 1);
    let run = || {
        let mut net = SmallCnn::new(
            SmallCnnConfig {
                input_size: 12,
                channels1: 4,
                channels2: 8,
                classes: 4,
            },
            9,
        );
        net.train(&train, 3, 0.05)
    };
    assert_eq!(run().to_bits(), run().to_bits());
}

#[test]
fn engine_stream_of_vdps_is_seed_deterministic() {
    let inputs: Vec<u32> = (0..352).map(|k| (k * 11) % 256).collect();
    let weights: Vec<i32> = (0..352).map(|k| (k * 13) % 255 - 127).collect();
    let run = |seed: u64| -> Vec<u64> {
        let e = SconnaEngine::paper_default(seed);
        (0..10).map(|_| e.vdp(&inputs, &weights).to_bits()).collect()
    };
    assert_eq!(run(5), run(5));
}
