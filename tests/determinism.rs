//! Reproducibility guarantees: every simulation and every seeded
//! stochastic component must be bit-identical across runs and across
//! parallel execution.

use sconna::accel::serve::{simulate_serving, sweep, ArrivalProcess, ServingConfig};
use sconna::accel::{simulate_inference, AcceleratorConfig, SconnaEngine};
use sconna::sim::parallel::{parallel_map, parallel_map_with};
use sconna::tensor::dataset::SyntheticDataset;
use sconna::tensor::engine::VdpEngine;
use sconna::tensor::models::{googlenet, shufflenet_v2};
use sconna::tensor::smallcnn::{SmallCnn, SmallCnnConfig};

#[test]
fn inference_simulation_is_deterministic() {
    let model = shufflenet_v2();
    for cfg in AcceleratorConfig::all() {
        let a = simulate_inference(&cfg, &model);
        let b = simulate_inference(&cfg, &model);
        assert_eq!(a.makespan, b.makespan, "{}", cfg.name);
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits(), "{}", cfg.name);
    }
}

#[test]
fn parallel_simulation_matches_serial() {
    let models = vec![googlenet(), shufflenet_v2()];
    let serial: Vec<u64> = models
        .iter()
        .map(|m| {
            simulate_inference(&AcceleratorConfig::sconna(), m)
                .makespan
                .as_ps()
        })
        .collect();
    let parallel: Vec<u64> = parallel_map(models.clone(), |m| {
        simulate_inference(&AcceleratorConfig::sconna(), &m)
            .makespan
            .as_ps()
    });
    assert_eq!(serial, parallel);
    let single_worker: Vec<u64> = parallel_map_with(models, 1, |m| {
        simulate_inference(&AcceleratorConfig::sconna(), &m)
            .makespan
            .as_ps()
    });
    assert_eq!(serial, single_worker);
}

#[test]
fn training_is_seed_deterministic() {
    let data = SyntheticDataset::new(4, 12, 0.2, 9);
    let train = data.batch(10, 1);
    let run = || {
        let mut net = SmallCnn::new(
            SmallCnnConfig {
                input_size: 12,
                channels1: 4,
                channels2: 8,
                classes: 4,
            },
            9,
        );
        net.train(&train, 3, 0.05)
    };
    assert_eq!(run().to_bits(), run().to_bits());
}

#[test]
fn engine_stream_of_vdps_is_seed_deterministic() {
    let inputs: Vec<u32> = (0..352).map(|k| (k * 11) % 256).collect();
    let weights: Vec<i32> = (0..352).map(|k| (k * 13) % 255 - 127).collect();
    let run = |seed: u64| -> Vec<u64> {
        let e = SconnaEngine::paper_default(seed);
        (0..10)
            .map(|_| e.vdp(&inputs, &weights).to_bits())
            .collect()
    };
    assert_eq!(run(5), run(5));
}

/// The serving-sweep configurations exercised by the thread-invariance
/// tests: closed-loop saturation points plus a Poisson point.
fn serving_sweep_configs() -> Vec<ServingConfig> {
    let mut configs: Vec<ServingConfig> = [(1usize, 1usize), (1, 4), (2, 4), (3, 2)]
        .into_iter()
        .map(|(i, b)| ServingConfig::saturation(AcceleratorConfig::sconna(), i, b, 24))
        .collect();
    configs.push(ServingConfig {
        arrivals: ArrivalProcess::Poisson { rate_fps: 2_000.0 },
        seed: 17,
        ..ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 24)
    });
    configs
}

#[test]
fn serving_simulation_is_deterministic() {
    let model = shufflenet_v2();
    for cfg in serving_sweep_configs() {
        let a = simulate_serving(&cfg, &model);
        let b = simulate_serving(&cfg, &model);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "instances {} batch {}",
            cfg.instances,
            cfg.max_batch
        );
    }
}

#[test]
fn serving_sweep_is_thread_count_invariant() {
    // Each sweep point owns its event queue and seed, so the report
    // vector must be bit-identical no matter how the points are spread
    // over workers.
    let model = shufflenet_v2();
    let configs = serving_sweep_configs();
    let baseline = format!("{:?}", sweep(configs.clone(), &model, 1));
    for workers in [2usize, 4, 8] {
        let run = format!("{:?}", sweep(configs.clone(), &model, workers));
        assert_eq!(baseline, run, "{workers} workers diverged from serial");
    }
}

#[test]
fn concurrent_vdp_on_shared_noiseless_engine_matches_serial() {
    // Without ADC noise the engine holds no mutable state, so concurrent
    // calls through the shared reference must be bit-identical to the
    // serial result.
    let inputs: Vec<u32> = (0..352).map(|k| (k * 11) % 256).collect();
    let weights: Vec<i32> = (0..352).map(|k| (k * 13) % 255 - 127).collect();
    let engine = SconnaEngine::noiseless();
    let serial = engine.vdp(&inputs, &weights).to_bits();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..16 {
                    assert_eq!(engine.vdp(&inputs, &weights).to_bits(), serial);
                }
            });
        }
    });
}

/// The noisy-call workload shared by the keyed order-independence tests:
/// distinct vector data and a distinct noise key per call.
fn keyed_calls(n: usize) -> Vec<(Vec<u32>, Vec<i32>, u64)> {
    (0..n)
        .map(|c| {
            let len = 100 + 23 * c;
            let inputs: Vec<u32> = (0..len).map(|k| ((k * 7 + c) % 256) as u32).collect();
            let weights: Vec<i32> = (0..len).map(|k| ((k * 3 + c) % 255) as i32 - 127).collect();
            (inputs, weights, (c as u64).wrapping_mul(0x9E37_79B9))
        })
        .collect()
}

#[test]
fn keyed_adc_noise_is_call_order_independent() {
    // The PR 2 `Mutex<StdRng>` scheme made each noisy result depend on
    // the global call history (only the post-burst stream *position* was
    // invariant). The keyed scheme is strictly stronger: every call's
    // result is a pure function of `(inputs, weights, key)`, so running
    // the same calls in a shuffled order — or interleaved with arbitrary
    // other calls — reproduces every individual result bit for bit.
    let engine = SconnaEngine::paper_default(99);
    let calls = keyed_calls(24);

    let in_order: Vec<u64> = calls
        .iter()
        .map(|(i, w, key)| engine.vdp_keyed(i, w, *key).to_bits())
        .collect();

    // Deterministically shuffled order, with unrelated calls interleaved.
    let mut order: Vec<usize> = (0..calls.len()).collect();
    order.reverse();
    order.rotate_left(7);
    let mut shuffled = vec![0u64; calls.len()];
    for &idx in &order {
        let (i, w, key) = &calls[idx];
        let _ = engine.vdp(i, w); // unrelated interleaved traffic
        shuffled[idx] = engine.vdp_keyed(i, w, *key).to_bits();
    }

    assert_eq!(
        in_order, shuffled,
        "keyed results must not depend on call order or interleaved traffic"
    );
}

#[test]
fn keyed_adc_noise_is_thread_interleaving_independent() {
    // Concurrent noisy calls through a shared engine reproduce their
    // serial results exactly — there is no shared mutable state left (the
    // engine holds no RNG, no mutex), so every thread observes the same
    // pure function.
    let engine = SconnaEngine::paper_default(7);
    let calls = keyed_calls(12);
    let serial: Vec<u64> = calls
        .iter()
        .map(|(i, w, key)| engine.vdp_keyed(i, w, *key).to_bits())
        .collect();

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let engine = &engine;
            let calls = &calls;
            let serial = &serial;
            scope.spawn(move || {
                // Each thread walks the calls from a different offset.
                for c in 0..calls.len() {
                    let idx = (c + t * 3) % calls.len();
                    let (i, w, key) = &calls[idx];
                    assert_eq!(
                        engine.vdp_keyed(i, w, *key).to_bits(),
                        serial[idx],
                        "thread {t} diverged on call {idx}"
                    );
                }
            });
        }
    });
}
