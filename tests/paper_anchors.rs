//! Every calibration anchor from the paper, asserted in one place. If a
//! model change breaks a published number, this file says which one.

use sconna::accel::organization::AcceleratorConfig;
use sconna::photonics::link::{received_power_dbm, LinkParameters};
use sconna::photonics::pca::{AdcModel, PcaCircuit};
use sconna::photonics::photodetector::{sconna_effective_dr_hz, Photodetector};
use sconna::photonics::scalability::{
    max_analog_n, sconna_scalability_default, AnalogOrganization,
};
use sconna::photonics::units::dbm_to_watts;
use sconna::tensor::models::{googlenet, mobilenet_v2, resnet50, shufflenet_v2};

/// Section V-B: P_PD-opt = −28 dBm.
#[test]
fn anchor_pd_sensitivity() {
    let pd = Photodetector::default();
    let sens = pd.sensitivity_dbm(1.0, sconna_effective_dr_hz(30e9, 8));
    assert!((sens + 28.0).abs() < 0.5, "sensitivity {sens} dBm");
}

/// Section V-B: N = M = 176, under a 200-channel DWDM cap.
#[test]
fn anchor_sconna_n176() {
    let s = sconna_scalability_default();
    assert_eq!(s.achievable_n, 176);
    assert_eq!(s.channel_limited_n, 200);
}

/// Table I anchors: MAM 44 / AMM 31 at 4-bit, 1 GS/s.
#[test]
fn anchor_table1() {
    assert_eq!(max_analog_n(AnalogOrganization::Mam, 4, 1e9), 44);
    assert_eq!(max_analog_n(AnalogOrganization::Amm, 4, 1e9), 31);
}

/// Section VI-B: evaluated configurations (N, DR, VDPE counts).
#[test]
fn anchor_evaluated_configs() {
    let s = AcceleratorConfig::sconna();
    assert_eq!((s.vdpe_size_n, s.total_vdpes), (176, 1024));
    let m = AcceleratorConfig::mam();
    assert_eq!((m.vdpe_size_n, m.total_vdpes), (22, 3971));
    let a = AcceleratorConfig::amm();
    assert_eq!((a.vdpe_size_n, a.total_vdpes), (16, 3172));
    // Analog baselines run 4-bit at 5 GS/s with 2-way bit slicing.
    assert_eq!(m.native_bits, 4);
    assert_eq!(m.bit_slices, 2);
    assert!((m.symbol_time.as_secs_f64() - 0.2e-9).abs() < 1e-15);
}

/// Section III-A: S = 4608 on N = 44 needs 105 psums; on SCONNA's
/// N = 176 it needs 27.
#[test]
fn anchor_psum_counts() {
    assert_eq!(4608usize.div_ceil(44), 105);
    assert_eq!(AcceleratorConfig::sconna().chunks(4608), 27);
}

/// Section II-B: ResNet50's largest kernel vector is 4608 points.
#[test]
fn anchor_resnet_vector() {
    assert_eq!(resnet50().max_vector_len(), 4608);
}

/// Table II's claim: >98 % of kernels exceed S = 44 on the large CNNs.
#[test]
fn anchor_kernel_census() {
    for m in [googlenet(), resnet50()] {
        let (small, large) = m.conv_kernel_census(44);
        assert!(large as f64 / (small + large) as f64 > 0.98, "{}", m.name);
    }
    // The depthwise models keep small kernels — the reason their Fig. 9
    // gains are smaller.
    for m in [mobilenet_v2(), shufflenet_v2()] {
        let (small, _) = m.conv_kernel_census(44);
        assert!(small > 0, "{}", m.name);
    }
}

/// Section V-C: the PCA accumulates the full 176×256 ones without
/// saturating, and its ADC's MAPE calibrates to ≈1.3 %.
#[test]
fn anchor_pca() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let circuit = PcaCircuit::default();
    assert!(circuit.is_linear_at(176 * 256));
    let adc = AdcModel::sconna_default();
    let mape = adc.measured_mape(4506, 45056, 20000, &mut StdRng::seed_from_u64(1));
    assert!((mape - 1.3).abs() < 0.3, "ADC MAPE {mape}");
}

/// Table III: the link budget at the published parameters leaves
/// N = 176 feasible and N = 177 infeasible.
#[test]
fn anchor_link_budget_edge() {
    let params = LinkParameters::default();
    let pd = Photodetector::default();
    let sens = pd.sensitivity_dbm(1.0, sconna_effective_dr_hz(30e9, 8));
    assert!(received_power_dbm(&params, 176, 176) >= sens);
    assert!(received_power_dbm(&params, 177, 177) < sens);
    // Laser: 10 dBm optical at 10 % wall-plug efficiency.
    assert!((dbm_to_watts(params.laser_power_dbm) - 10e-3).abs() < 1e-9);
    assert!((params.wall_plug_efficiency - 0.1).abs() < 1e-12);
}

/// Section VI-C headline: gmean FPS speedups within 2× of the paper's
/// 66.5× (vs MAM) and 146.4× (vs AMM).
#[test]
fn anchor_fig9_speedups() {
    use sconna::accel::perf::simulate_inference;
    use sconna::sim::stats::gmean;
    let models = [googlenet(), resnet50(), mobilenet_v2(), shufflenet_v2()];
    let fps = |cfg: &AcceleratorConfig| -> Vec<f64> {
        models
            .iter()
            .map(|m| simulate_inference(cfg, m).fps)
            .collect()
    };
    let s = fps(&AcceleratorConfig::sconna());
    let m = fps(&AcceleratorConfig::mam());
    let a = fps(&AcceleratorConfig::amm());
    let over_mam = gmean(&s.iter().zip(&m).map(|(x, y)| x / y).collect::<Vec<_>>());
    let over_amm = gmean(&s.iter().zip(&a).map(|(x, y)| x / y).collect::<Vec<_>>());
    assert!(
        over_mam > 33.0 && over_mam < 133.0,
        "SCONNA/MAM {over_mam} vs paper 66.5"
    );
    assert!(
        over_amm > 73.0 && over_amm < 293.0,
        "SCONNA/AMM {over_amm} vs paper 146.4"
    );
}
