//! Autoscaler invariants on the steppable fleet.
//!
//! The reactive autoscaler ([`AutoscalePolicy`]) retargets the active
//! pool against observed demand through the same epoch-guarded
//! reload/drain machinery as fault handling. This harness drives
//! autoscaled fleets one event at a time and asserts, at **every** step
//! boundary across scale transitions:
//!
//! - the active (non-standby) pool stays inside `[min, max]`;
//! - request conservation ([`FleetSnapshot::accounted`]` == offered`) —
//!   scaling never loses a request, and scale-down *drains* busy
//!   instances instead of aborting their batches;
//! - the decision trace is well-formed (monotone times, bounded
//!   targets, real pool movements);
//! - reports are bit-identical across 1/2/8 workers, across shuffled
//!   trace insertion orders, and across replays;
//! - capacity lost to kills is replaced from standby — the controller
//!   targets the *live* pool, so an autoscaled fleet self-heals even
//!   without a supervisor.

use sconna::accel::serve::{
    simulate_serving, sweep, ArrivalProcess, AutoscalePolicy, Fleet, FleetSnapshot,
    FunctionalWorkload, InstanceHealth, ServingConfig,
};
use sconna::accel::{AcceleratorConfig, SconnaEngine};
use sconna::sim::time::SimTime;
use sconna::tensor::dataset::Sample;
use sconna::tensor::layers::{MaxPool2d, QConv2d, QFc};
use sconna::tensor::models::{shufflenet_v2, CnnModel};
use sconna::tensor::network::{QLayer, QuantizedNetwork};
use sconna::tensor::quant::{ActivationQuant, Requant, WeightQuant};
use sconna::tensor::Tensor;

/// Active pool at a step boundary: every instance the autoscaler has
/// not parked (up, busy, draining, reloading, down or benched — all of
/// them claimed capacity, only `Standby` is outside the pool).
fn active_pool(snap: &FleetSnapshot) -> usize {
    snap.instances
        .iter()
        .filter(|i| i.health != InstanceHealth::Standby)
        .count()
}

/// Step-boundary invariants for an autoscaled fleet.
fn check_autoscale_step(snap: &FleetSnapshot, cfg: &ServingConfig) {
    assert_eq!(
        snap.accounted(),
        snap.offered,
        "conservation violated at {:?}",
        snap.now
    );
    let policy = cfg
        .autoscale
        .expect("this harness drives autoscaled fleets");
    let active = active_pool(snap);
    assert!(
        (policy.min..=policy.max).contains(&active),
        "active pool {active} escaped [{}, {}] at {:?}",
        policy.min,
        policy.max,
        snap.now
    );
    for inst in &snap.instances {
        // Standby instances are admin-down: nothing in flight, ever.
        if inst.health == InstanceHealth::Standby {
            assert_eq!(inst.in_flight, 0, "standby instance holds a batch");
            assert!(!inst.hedge_batch, "standby instance holds a hedge");
        }
        // A draining instance is still finishing a real batch.
        if inst.health == InstanceHealth::Draining {
            assert!(
                inst.in_flight > 0 || inst.hedge_batch,
                "draining instance with nothing in flight"
            );
        }
    }
}

/// A two-phase arithmetic trace: `burst` arrivals at `burst_x` times the
/// per-instance service rate, then `tail` arrivals at a tenth of it —
/// enough demand swing to force scale-ups and scale-downs.
fn burst_then_quiet_trace(
    cfg: &ServingConfig,
    model: &CnnModel,
    burst: usize,
    tail: usize,
    burst_x: f64,
) -> Vec<SimTime> {
    let per_instance = cfg.estimated_capacity_fps(model) / cfg.instances as f64;
    let mut times = Vec::with_capacity(burst + tail);
    let mut t = 0.0f64;
    for _ in 0..burst {
        t += 1.0 / (burst_x * per_instance);
        times.push(SimTime::from_secs_f64(t));
    }
    for _ in 0..tail {
        t += 1.0 / (0.1 * per_instance);
        times.push(SimTime::from_secs_f64(t));
    }
    times
}

/// The shared scenario: an 8-instance pool scaling between 1 and 8
/// under a burst-then-quiet trace.
fn scenario() -> (CnnModel, ServingConfig) {
    let model = shufflenet_v2();
    let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 8, 2, 72).with_seed(11);
    let per_instance = base.estimated_capacity_fps(&model) / 8.0;
    let times = burst_then_quiet_trace(&base, &model, 56, 16, 6.0);
    // Ticks several times per phase; cooldown shorter than a phase.
    let span = times.last().expect("trace non-empty").as_secs_f64();
    let policy = AutoscalePolicy::new(1, 8)
        .with_initial(2)
        .with_check_interval(SimTime::from_secs_f64(span / 40.0))
        .with_cooldown(SimTime::from_secs_f64(span / 20.0));
    assert!(per_instance > 0.0);
    let cfg = base
        .with_unbounded_queue()
        .with_arrivals(ArrivalProcess::Trace { times })
        .with_autoscale(policy);
    (model, cfg)
}

/// Pool bounds and conservation hold at every step boundary; the
/// decision trace shows the pool moving both ways; the quiet tail ends
/// below the burst peak; every request is served.
#[test]
fn pool_bounds_and_conservation_hold_across_scale_transitions() {
    let (model, cfg) = scenario();
    let mut fleet = Fleet::new(&cfg, &model);
    let mut peak = 0usize;
    let mut saw_standby = false;
    let mut saw_reloading = false;
    while fleet.step() {
        let snap = fleet.snapshot();
        check_autoscale_step(&snap, &cfg);
        peak = peak.max(active_pool(&snap));
        saw_standby |= snap
            .instances
            .iter()
            .any(|i| i.health == InstanceHealth::Standby);
        saw_reloading |= snap
            .instances
            .iter()
            .any(|i| i.health == InstanceHealth::Reloading);
    }
    let fin = fleet.snapshot();
    check_autoscale_step(&fin, &cfg);
    assert!(fin.is_complete);
    assert!(saw_standby, "the parked tail must be visible as Standby");
    assert!(
        saw_reloading,
        "a waking instance must pay a visible weight reload"
    );
    assert!(peak > 2, "the burst must push the pool past its initial 2");
    assert!(
        active_pool(&fin) < peak,
        "the quiet tail must scale the pool back down"
    );

    let events = fleet.scale_events().to_vec();
    assert!(events.iter().any(|e| e.to > e.from), "no scale-up recorded");
    assert!(
        events.iter().any(|e| e.to < e.from),
        "no scale-down recorded"
    );
    for w in events.windows(2) {
        assert!(w[0].at <= w[1].at, "decision trace out of order");
    }
    for e in &events {
        assert!(e.from != e.to, "a no-op decision was committed");
        assert!(e.to >= 1 && e.to <= 8, "target {} out of bounds", e.to);
        assert!(e.demand_fps.is_finite() && e.demand_fps >= 0.0);
    }

    let report = fleet.into_report();
    assert_eq!(report.completed, report.offered, "scaling lost a request");
    assert_eq!(report.dropped, 0);
}

/// The same autoscaled run is bit-identical across 1/2/8 sweep workers,
/// across shuffled trace insertion orders, and against the steppable
/// drive — the determinism contract extends across scale boundaries.
#[test]
fn reports_are_bit_identical_across_workers_and_trace_orders() {
    let (model, cfg) = scenario();
    let ArrivalProcess::Trace { times } = &cfg.arrivals else {
        unreachable!("scenario uses a trace");
    };
    let reversed: Vec<SimTime> = times.iter().rev().copied().collect();
    let mut interleaved: Vec<SimTime> = times.iter().step_by(2).copied().collect();
    interleaved.extend(times.iter().skip(1).step_by(2).copied());
    let variants = vec![
        cfg.clone(),
        cfg.clone()
            .with_arrivals(ArrivalProcess::Trace { times: reversed }),
        cfg.clone()
            .with_arrivals(ArrivalProcess::Trace { times: interleaved }),
    ];

    let baseline = sweep(variants.clone(), &model, 1);
    let reference = format!("{:?}", baseline[0]);
    for r in &baseline {
        assert_eq!(
            format!("{r:?}"),
            reference,
            "a shuffled trace order changed the report"
        );
    }
    for workers in [2usize, 8] {
        let grid = sweep(variants.clone(), &model, workers);
        for r in &grid {
            assert_eq!(
                format!("{r:?}"),
                reference,
                "worker count {workers} changed the report"
            );
        }
    }
    // The run-to-completion wrapper and a replay agree too.
    assert_eq!(format!("{:?}", simulate_serving(&cfg, &model)), reference);
}

/// Functional autoscaled serving: instances executing real batches
/// through prepared models (and per-instance scratch arenas) produce
/// predictions bit-identical across 1/2/8 execution workers, with every
/// request served across the scale transitions.
#[test]
fn functional_autoscaled_serving_is_worker_invariant() {
    let aq = ActivationQuant {
        scale: 1.0 / 255.0,
        bits: 8,
    };
    let wq = WeightQuant {
        scale: 1.0 / 127.0,
        bits: 8,
    };
    let net = QuantizedNetwork {
        input_quant: aq,
        layers: vec![
            QLayer::Conv(QConv2d {
                name: "as-c1".into(),
                weights: Tensor::from_fn(&[4, 1, 3, 3], |i| ((i * 29) % 255) as i32 - 127),
                bias: vec![0.0; 4],
                stride: 1,
                padding: 1,
                groups: 1,
                requant: Requant::new(aq, wq, aq),
            }),
            QLayer::MaxPool(MaxPool2d {
                kernel: 2,
                stride: 2,
                padding: 0,
            }),
            QLayer::GlobalAvgPool,
            QLayer::Fc(QFc {
                name: "as-fc".into(),
                weights: Tensor::from_fn(&[3, 4], |i| ((i * 67) % 255) as i32 - 127),
                bias: vec![0.0; 3],
                dequant: aq.scale * wq.scale,
            }),
        ],
    };
    let samples: Vec<Sample> = (0..6)
        .map(|s| Sample {
            image: Tensor::from_fn(&[1, 8, 8], |i| ((s * 37 + i) % 256) as f32 / 255.0),
            label: s % 3,
        })
        .collect();
    let engine = SconnaEngine::paper_default(5);

    let model = shufflenet_v2();
    let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 4, 2, 28).with_seed(3);
    let times = burst_then_quiet_trace(&base, &model, 20, 8, 4.0);
    let span = times.last().expect("trace non-empty").as_secs_f64();
    let policy = AutoscalePolicy::new(1, 4)
        .with_initial(1)
        .with_check_interval(SimTime::from_secs_f64(span / 30.0))
        .with_cooldown(SimTime::from_secs_f64(span / 15.0));
    let cfg = base
        .with_unbounded_queue()
        .with_arrivals(ArrivalProcess::Trace { times })
        .with_autoscale(policy);

    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        let workload = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers,
        };
        let mut fleet = Fleet::new_functional(&cfg, &model, &workload);
        while fleet.step() {
            check_autoscale_step(&fleet.snapshot(), &cfg);
        }
        assert!(!fleet.scale_events().is_empty(), "the trace must scale");
        let r = fleet.into_functional_report();
        assert_eq!(r.serving.completed, r.serving.offered);
        assert!(r.correct > 0, "served batches must produce predictions");
        reports.push(format!("{r:?}"));
    }
    assert_eq!(reports[0], reports[1], "worker count 2 changed the report");
    assert_eq!(reports[0], reports[2], "worker count 8 changed the report");
}

/// Capacity lost to kills is replaced from standby: the controller
/// compares demand against the *live* pool, so when the only active
/// instance dies — no supervisor, no scripted restart — the next tick
/// wakes a standby replacement and the run still serves everything.
#[test]
fn killed_capacity_is_replaced_from_standby_without_a_supervisor() {
    use sconna::accel::serve::FaultPlan;
    let model = shufflenet_v2();
    let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 3, 2, 18).with_seed(5);
    let per_instance = base.estimated_capacity_fps(&model) / 3.0;
    // Steady demand worth about one instance.
    let mut times = Vec::new();
    let mut t = 0.0f64;
    for _ in 0..18 {
        t += 1.0 / per_instance;
        times.push(SimTime::from_secs_f64(t));
    }
    let span = times.last().expect("trace non-empty").as_secs_f64();
    let policy = AutoscalePolicy::new(1, 3)
        .with_initial(1)
        .with_check_interval(SimTime::from_secs_f64(span / 30.0))
        .with_cooldown(SimTime::from_secs_f64(span / 30.0));
    let cfg = base
        .with_unbounded_queue()
        .with_arrivals(ArrivalProcess::Trace { times })
        .with_autoscale(policy);
    // Kill the lone active instance a third of the way in.
    let plan = FaultPlan::new().kill(SimTime::from_secs_f64(span / 3.0), 0);

    let mut fleet = Fleet::new(&cfg, &model).with_faults(&plan);
    let mut saw_down = false;
    while fleet.step() {
        let snap = fleet.snapshot();
        check_autoscale_step(&snap, &cfg);
        saw_down |= snap
            .instances
            .iter()
            .any(|i| i.health == InstanceHealth::Down);
    }
    assert!(saw_down, "the kill must land on the active instance");
    let report = fleet.into_report();
    assert_eq!(
        report.completed, report.offered,
        "standby replacement must rescue the stranded demand"
    );
    assert_eq!(report.shed.stranded, 0);
}

/// A policy whose `max` disagrees with the provisioned pool is a
/// configuration bug, surfaced as a descriptive construction error (the
/// panicking constructors quote the same message).
#[test]
fn autoscale_max_must_equal_the_provisioned_pool() {
    let model = shufflenet_v2();
    let cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 4, 2, 8)
        .with_autoscale(AutoscalePolicy::new(1, 2));
    let err = Fleet::try_new(&cfg, &model)
        .err()
        .expect("mismatched autoscale max must not build")
        .to_string();
    assert!(
        err.contains("autoscale max (2) must equal the provisioned instance pool (4)"),
        "{err:?}"
    );
}
