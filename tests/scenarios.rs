//! Step-level scenario harness for the steppable [`Fleet`].
//!
//! Where `tests/overload.rs` checks terminal accounting, this harness
//! drives the serving state machine **one event at a time** and asserts
//! the fleet's invariants at *every* step boundary:
//!
//! - conservation: `offered == completed + dropped + degraded + queued +
//!   in_flight` ([`FleetSnapshot::accounted`]) — requests are never
//!   silently lost, faults or not;
//! - monotone simulated time and monotone terminal counters;
//! - the bounded queue respects `queue_cap × instances` under every
//!   non-[`AdmissionPolicy::Degrade`] policy (Degrade deliberately admits
//!   overflow onto the queue at the fallback tier);
//! - the per-cause shed breakdown sums to the drop total;
//! - snapshot self-consistency (per-instance in-flight counts sum to the
//!   fleet total, `health == Busy` iff a batch is in flight).
//!
//! It also pins the three run-to-completion wrappers against report
//! literals captured on the pre-refactor `serve.rs` (the monolithic
//! run-to-completion implementation), proving the `Fleet` restructuring
//! is bit-identical, and property-tests fault injection: arbitrary
//! kill / restart / stall plans conserve requests at every step, replay
//! bit-identically, and an empty [`FaultPlan`] is indistinguishable from
//! no plan at all.

use proptest::collection::vec;
use proptest::prelude::*;
use sconna::accel::perf::model_reload_time;
use sconna::accel::serve::{
    overload_sweep, simulate_serving, simulate_serving_functional, AdmissionPolicy, ArrivalProcess,
    FailureProcess, FaultPlan, Fleet, FleetSnapshot, FunctionalWorkload, InstanceHealth,
    RetryPolicy, ServingConfig, Supervisor, TenantScheduler, TenantSpec,
};
use sconna::accel::{AcceleratorConfig, SconnaEngine};
use sconna::sim::time::SimTime;
use sconna::tensor::dataset::Sample;
use sconna::tensor::layers::{MaxPool2d, QConv2d, QFc};
use sconna::tensor::models::{googlenet, shufflenet_v2};
use sconna::tensor::network::{QLayer, QuantizedNetwork};
use sconna::tensor::quant::{ActivationQuant, Requant, WeightQuant};
use sconna::tensor::Tensor;

/// The hand-built quantized CNN + labelled request population the
/// pre-refactor literals were captured with (fixed weights — any change
/// here invalidates the pinned accuracy numbers below).
fn pin_workload() -> (QuantizedNetwork, Vec<Sample>) {
    let aq = ActivationQuant {
        scale: 1.0 / 255.0,
        bits: 8,
    };
    let wq = WeightQuant {
        scale: 1.0 / 127.0,
        bits: 8,
    };
    let net = QuantizedNetwork {
        input_quant: aq,
        layers: vec![
            QLayer::Conv(QConv2d {
                name: "c1".into(),
                weights: Tensor::from_fn(&[4, 1, 3, 3], |i| ((i * 29) % 255) as i32 - 127),
                bias: vec![0.0; 4],
                stride: 1,
                padding: 1,
                groups: 1,
                requant: Requant::new(aq, wq, aq),
            }),
            QLayer::MaxPool(MaxPool2d {
                kernel: 2,
                stride: 2,
                padding: 0,
            }),
            QLayer::GlobalAvgPool,
            QLayer::Fc(QFc {
                name: "fc".into(),
                weights: Tensor::from_fn(&[3, 4], |i| ((i * 67) % 255) as i32 - 127),
                bias: vec![0.0; 3],
                dequant: aq.scale * wq.scale,
            }),
        ],
    };
    let samples: Vec<Sample> = (0..6)
        .map(|s| Sample {
            image: Tensor::from_fn(&[1, 8, 8], |i| ((s * 37 + i) % 256) as f32 / 255.0),
            label: s % 3,
        })
        .collect();
    (net, samples)
}

/// Asserts every step-boundary invariant between two consecutive
/// snapshots of the same fleet.
fn check_step(prev: &FleetSnapshot, snap: &FleetSnapshot, cfg: &ServingConfig) {
    assert!(
        snap.now >= prev.now,
        "sim time went backwards: {:?} -> {:?}",
        prev.now,
        snap.now
    );
    assert!(snap.events_processed >= prev.events_processed);
    assert_eq!(
        snap.accounted(),
        snap.offered,
        "conservation violated at {:?}: {snap:?}",
        snap.now
    );
    assert!(snap.offered >= prev.offered, "offered went backwards");
    assert!(snap.completed >= prev.completed, "completed went backwards");
    assert!(snap.dropped >= prev.dropped, "dropped went backwards");
    assert!(snap.degraded >= prev.degraded, "degraded went backwards");
    assert!(snap.batches >= prev.batches, "batches went backwards");
    // Degrade admits overflow onto the queue at the fallback tier, so the
    // bound applies to the other policies only.
    if !matches!(cfg.admission, AdmissionPolicy::Degrade { .. }) {
        if let Some(cap) = cfg.queue_cap {
            let bound = (cap * cfg.instances) as u64;
            assert!(
                snap.queued <= bound,
                "queued {} exceeds bound {bound} at {:?}",
                snap.queued,
                snap.now
            );
        }
    }
    assert_eq!(
        snap.shed.newest
            + snap.shed.oldest
            + snap.shed.deadline
            + snap.shed.stranded
            + snap.shed.retry,
        snap.dropped,
        "shed breakdown does not sum to the drop total"
    );
    // Hedged duplicates report in_flight = 0 (their requests are
    // accounted to the primary), so the per-instance sum still matches
    // the fleet total exactly.
    let per_instance: u64 = snap.instances.iter().map(|i| i.in_flight as u64).sum();
    assert_eq!(per_instance, snap.in_flight, "per-instance in-flight sum");
    // Per-tenant conservation mirrors the fleet-wide invariant (a
    // single-tenant run carries exactly one row), and every tenant
    // column sums back to the fleet total — no request ever switches
    // owners or goes uncounted.
    assert!(!snap.tenants.is_empty(), "every fleet has a tenant roster");
    for ts in &snap.tenants {
        assert_eq!(
            ts.accounted(),
            ts.offered,
            "per-tenant conservation violated at {:?}: {ts:?}",
            snap.now
        );
    }
    let tsum = |f: fn(&sconna::accel::serve::TenantSnapshot) -> u64| {
        snap.tenants.iter().map(f).sum::<u64>()
    };
    assert_eq!(tsum(|t| t.offered), snap.offered, "tenant offered sum");
    assert_eq!(
        tsum(|t| t.completed),
        snap.completed,
        "tenant completed sum"
    );
    assert_eq!(tsum(|t| t.dropped), snap.dropped, "tenant dropped sum");
    assert_eq!(tsum(|t| t.degraded), snap.degraded, "tenant degraded sum");
    assert_eq!(tsum(|t| t.queued), snap.queued, "tenant queued sum");
    assert_eq!(
        tsum(|t| t.in_flight),
        snap.in_flight,
        "tenant in-flight sum"
    );
    assert_eq!(snap.instances.len(), cfg.instances);
    for inst in &snap.instances {
        assert!(inst.in_flight <= cfg.max_batch, "batch over the limit");
        // A draining instance (autoscale scale-down) is the one other
        // health that carries an in-flight batch.
        assert_eq!(
            inst.in_flight > 0 || inst.hedge_batch,
            matches!(inst.health, InstanceHealth::Busy | InstanceHealth::Draining),
            "in-flight/health mismatch: {inst:?}"
        );
        if inst.degraded_batch {
            assert!(
                inst.in_flight > 0 || inst.hedge_batch,
                "degraded flag on an empty batch"
            );
        }
        if inst.hedge_batch {
            assert_eq!(inst.in_flight, 0, "hedge requests belong to the primary");
        }
    }
}

/// Drives `fleet` to completion one event at a time, checking every
/// step-boundary invariant, then the terminal state. Returns the final
/// snapshot.
fn drive_with_invariants(fleet: &mut Fleet<'_>, cfg: &ServingConfig) -> FleetSnapshot {
    let mut prev = fleet.snapshot();
    check_step(&prev, &prev, cfg);
    while fleet.step() {
        let snap = fleet.snapshot();
        assert_eq!(snap.events_processed, prev.events_processed + 1);
        assert_eq!(fleet.now(), snap.now);
        check_step(&prev, &snap, cfg);
        prev = snap;
    }
    // The settling step (stranded drain) pops no event but may close
    // terminal accounting.
    let fin = fleet.snapshot();
    check_step(&prev, &fin, cfg);
    assert!(fin.is_complete && fleet.is_complete());
    assert!(fleet.next_event_time().is_none());
    assert!(!fleet.step(), "step after settling must be a no-op");
    assert_eq!(fin.queued, 0);
    assert_eq!(fin.in_flight, 0);
    assert_eq!(fin.offered, cfg.requests as u64);
    assert_eq!(fin.completed + fin.dropped + fin.degraded, fin.offered);
    fin
}

/// A manual step-by-step drive and a `step_until` chunked drive both
/// produce reports bit-identical to the run-to-completion wrapper.
#[test]
fn manual_drives_are_bit_identical_to_the_wrapper() {
    let model = googlenet();
    let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 8, 48);
    let capacity = base.estimated_capacity_fps(&model);
    let cfg = base
        .with_poisson(2.0 * capacity)
        .with_queue_cap(2)
        .with_seed(17);
    let reference = format!("{:?}", simulate_serving(&cfg, &model));

    // Step-by-step, with invariants checked at every boundary.
    let mut stepped = Fleet::new(&cfg, &model);
    drive_with_invariants(&mut stepped, &cfg);
    assert_eq!(format!("{:?}", stepped.into_report()), reference);

    // Chunked: advance the horizon 50 µs at a time.
    let mut chunked = Fleet::new(&cfg, &model);
    let chunk = SimTime::from_ns(50_000);
    let mut horizon = chunk;
    while !chunked.is_complete() {
        chunked.step_until(horizon);
        assert!(
            chunked.now() <= horizon,
            "step_until processed an event past its horizon"
        );
        horizon += chunk;
    }
    assert_eq!(format!("{:?}", chunked.into_report()), reference);
}

/// Pre-refactor literal pin: closed-loop saturation of a 2×8 GoogleNet
/// fleet, captured on the monolithic `serve.rs` immediately before the
/// `Fleet` restructuring. Every figure must survive bit-identically.
#[test]
fn pinned_closed_loop_googlenet_report() {
    let model = googlenet();
    let sat = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 8, 64);
    let a = simulate_serving(&sat, &model);
    assert_eq!(a.offered, 64);
    assert_eq!(a.completed, 64);
    assert_eq!(a.dropped, 0);
    assert_eq!(a.degraded, 0);
    assert_eq!(a.batches, 8);
    assert_eq!(format!("{:?}", a.mean_batch_fill), "8.0");
    assert_eq!(a.makespan.as_ps(), 2_818_799_100);
    assert_eq!(format!("{:?}", a.fps), "22704.704283465962");
    assert_eq!(a.latency.p50.as_ps(), 1_409_399_550);
    assert_eq!(a.latency.p99.as_ps(), 1_409_399_550);
    assert_eq!(a.latency.mean.as_ps(), 1_233_224_606);
    assert_eq!(format!("{:?}", a.utilization), "[1.0, 1.0]");
    assert_eq!(format!("{:?}", a.energy_j), "1.8583617426408159");
    assert_eq!(
        format!("{:?}", a.energy_per_inference_j),
        "0.029036902228762748"
    );
    // The closed-form capacity estimate the overload configs key off.
    assert_eq!(
        format!("{:?}", sat.estimated_capacity_fps(&model)),
        "22704.704283465962"
    );
}

/// Pre-refactor literal pin: Poisson overload at 2× capacity into a
/// bounded DropNewest queue.
#[test]
fn pinned_poisson_overload_googlenet_report() {
    let model = googlenet();
    let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 8, 48);
    let capacity = base.estimated_capacity_fps(&model);
    let cfg = base
        .with_poisson(2.0 * capacity)
        .with_queue_cap(2)
        .with_seed(17);
    let b = simulate_serving(&cfg, &model);
    assert_eq!(b.offered, 48);
    assert_eq!(b.completed, 27);
    assert_eq!(b.dropped, 21);
    assert_eq!(b.shed.newest, 21);
    assert_eq!(b.shed.oldest, 0);
    assert_eq!(b.shed.deadline, 0);
    assert_eq!(b.shed.degraded, 0);
    assert_eq!(b.shed.stranded, 0);
    assert_eq!(format!("{:?}", b.drop_rate), "0.4375");
    assert_eq!(b.latency.p50.as_ps(), 454_812_001);
    assert_eq!(b.latency.p99.as_ps(), 601_622_806);
    assert_eq!(format!("{:?}", b.fps), "18816.003246588465");
    assert_eq!(format!("{:?}", b.goodput_fps), "18816.003246588465");
    assert_eq!(b.queue_depth.max_depth(), 4);
}

/// Pre-refactor literal pin: the functional wrapper under Degrade
/// admission and the two-point overload sweep — FPS, tail latency, shed
/// counts and accuracy all bit-identical across the restructuring.
#[test]
fn pinned_functional_degrade_and_overload_curve() {
    let model = googlenet();
    let (net, samples) = pin_workload();
    let fallback = net.degraded(4);
    let engine = SconnaEngine::paper_default(5);
    let sat = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 48);
    let capacity = sat.estimated_capacity_fps(&model);
    assert_eq!(format!("{capacity:?}"), "22547.15166751082");

    let c_cfg = sat
        .clone()
        .with_queue_cap(1)
        .with_admission(AdmissionPolicy::Degrade { fallback_bits: 4 })
        .with_poisson(2.5 * capacity)
        .with_seed(7);
    let workload = FunctionalWorkload {
        net: &net,
        fallback: Some(&fallback),
        fallback_engine: None,
        samples: &samples,
        engine: &engine,
        workers: 1,
    };
    let c = simulate_serving_functional(&c_cfg, &model, &workload);
    assert_eq!(c.serving.offered, 48);
    assert_eq!(c.serving.completed, 10);
    assert_eq!(c.serving.degraded, 38);
    assert_eq!(c.serving.dropped, 0);
    assert_eq!(c.serving.shed.degraded, 38);
    assert_eq!(c.correct, 16);
    assert_eq!(format!("{:?}", c.accuracy_under_load), "0.3333333333333333");
    assert_eq!(format!("{:?}", c.accuracy_offered), "0.3333333333333333");
    assert_eq!(c.serving.latency.p50.as_ps(), 230_884_309);
    assert_eq!(c.serving.latency.p99.as_ps(), 317_819_567);
    assert_eq!(format!("{:?}", c.serving.fps), "7647.2106674440965");
    assert_eq!(format!("{:?}", c.serving.goodput_fps), "36706.61120373166");

    let d_base = sat.with_queue_cap(4).with_seed(23);
    let d_workload = FunctionalWorkload {
        net: &net,
        fallback: None,
        fallback_engine: None,
        samples: &samples,
        engine: &engine,
        workers: 1,
    };
    let rates = [0.6 * capacity, 1.8 * capacity];
    let curve = overload_sweep(&d_base, &model, &d_workload, &rates, 2);
    assert_eq!(curve.len(), 2);
    assert_eq!(format!("{:?}", curve[0].offered_fps), "13528.291000506493");
    assert_eq!(curve[0].report.serving.completed, 48);
    assert_eq!(curve[0].report.serving.dropped, 0);
    assert_eq!(curve[0].report.correct, 16);
    assert_eq!(
        format!("{:?}", curve[0].report.accuracy_under_load),
        "0.3333333333333333"
    );
    assert_eq!(curve[0].report.serving.latency.p50.as_ps(), 328_025_925);
    assert_eq!(curve[0].report.serving.latency.p99.as_ps(), 451_186_983);
    assert_eq!(
        format!("{:?}", curve[0].report.serving.goodput_fps),
        "11858.00270032908"
    );
    assert_eq!(format!("{:?}", curve[1].offered_fps), "40584.87300151948");
    assert_eq!(curve[1].report.serving.completed, 36);
    assert_eq!(curve[1].report.serving.dropped, 12);
    assert_eq!(curve[1].report.serving.shed.newest, 12);
    assert_eq!(curve[1].report.correct, 13);
    assert_eq!(
        format!("{:?}", curve[1].report.accuracy_under_load),
        "0.3611111111111111"
    );
    assert_eq!(curve[1].report.serving.latency.p50.as_ps(), 567_429_009);
    assert_eq!(curve[1].report.serving.latency.p99.as_ps(), 698_196_150);
    assert_eq!(
        format!("{:?}", curve[1].report.serving.goodput_fps),
        "19315.15091372194"
    );
}

/// The headline chaos scenario: a seeded stall / kill / restart plan on a
/// functional fleet under Poisson overload. Conservation holds at every
/// step, the faults demonstrably land (both instances go down at some
/// boundary), and the full report — predictions included — is
/// bit-identical across 1 / 2 / 8 execution workers and across replays.
#[test]
fn kill_restart_stall_chaos_is_deterministic_across_workers() {
    let (net, samples) = pin_workload();
    let engine = SconnaEngine::paper_default(5);
    let model = shufflenet_v2();
    let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 32);
    let capacity = base.estimated_capacity_fps(&model);
    let cfg = base
        .with_poisson(1.5 * capacity)
        .with_queue_cap(4)
        .with_seed(29);
    // Fault times as fractions of the expected arrival window.
    let window_ps = (32.0 / (1.5 * capacity) * 1e12) as u64;
    let t = |num: u64, den: u64| SimTime::from_ps(window_ps * num / den);
    let plan = FaultPlan::new()
        .stall(t(1, 8), 1, t(1, 8))
        .kill(t(1, 4), 0)
        .restart(t(1, 2), 0)
        .kill(t(5, 8), 1)
        .restart(t(3, 4), 1);

    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        let workload = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers,
        };
        let mut fleet = Fleet::new_functional(&cfg, &model, &workload).with_faults(&plan);
        let mut prev = fleet.snapshot();
        let mut saw_down = [false; 2];
        let mut saw_stalled = false;
        while fleet.step() {
            let snap = fleet.snapshot();
            check_step(&prev, &snap, &cfg);
            for (i, inst) in snap.instances.iter().enumerate() {
                saw_down[i] |=
                    inst.health == InstanceHealth::Down || inst.health == InstanceHealth::Reloading;
                saw_stalled |= inst.health == InstanceHealth::Stalled;
            }
            prev = snap;
        }
        let fin = fleet.snapshot();
        check_step(&prev, &fin, &cfg);
        assert_eq!(fin.offered, 32);
        assert!(saw_down[0] && saw_down[1], "both kills must land mid-run");
        assert!(saw_stalled, "the stall window must be observable");
        reports.push(format!("{:?}", fleet.into_functional_report()));
    }
    assert_eq!(reports[0], reports[1], "worker count 2 changed the report");
    assert_eq!(reports[0], reports[2], "worker count 8 changed the report");

    // Replay of the same seeded chaos run is bit-identical.
    let workload = FunctionalWorkload {
        net: &net,
        fallback: None,
        fallback_engine: None,
        samples: &samples,
        engine: &engine,
        workers: 2,
    };
    let replay = Fleet::new_functional(&cfg, &model, &workload)
        .with_faults(&plan)
        .into_functional_report();
    assert_eq!(format!("{replay:?}"), reports[0]);
}

/// A restarted instance pays exactly the DKV/LUT weight-reload latency:
/// it reports `Reloading` from the restart instant until
/// `restart + model_reload_time`, then rejoins the fleet and the run
/// still serves every request.
#[test]
fn restart_pays_the_model_reload_latency() {
    let model = shufflenet_v2();
    let accel = AcceleratorConfig::sconna();
    let reload = model_reload_time(&accel, &model);
    assert!(reload > SimTime::ZERO, "reload latency must be nonzero");

    let cfg = ServingConfig::saturation(accel, 1, 2, 8);
    let capacity = cfg.estimated_capacity_fps(&model);
    let batch_ps = (2.0 / capacity * 1e12) as u64;
    let t_kill = SimTime::from_ps(batch_ps / 2); // mid first batch
    let t_restart = SimTime::from_ps(batch_ps * 3);
    let plan = FaultPlan::new().kill(t_kill, 0).restart(t_restart, 0);

    let mut fleet = Fleet::new(&cfg, &model).with_faults(&plan);
    let mut reload_started = None;
    let mut reload_ended = None;
    let mut prev = fleet.snapshot().instances[0].health;
    while fleet.step() {
        let health = fleet.snapshot().instances[0].health;
        if prev != InstanceHealth::Reloading && health == InstanceHealth::Reloading {
            reload_started = Some(fleet.now());
        }
        if prev == InstanceHealth::Reloading
            && health != InstanceHealth::Reloading
            && reload_ended.is_none()
        {
            reload_ended = Some(fleet.now());
        }
        prev = health;
    }
    assert_eq!(reload_started, Some(t_restart));
    assert_eq!(reload_ended, Some(t_restart + reload));

    let report = fleet.into_report();
    assert_eq!(report.completed, 8);
    assert_eq!(report.dropped, 0);
}

/// Killing every instance with no restart scheduled strands the queued
/// work — accounted as `ShedStranded` drops, never silently lost, with
/// conservation intact at every step of the collapse.
#[test]
fn killing_every_instance_strands_queued_work_without_losing_it() {
    let model = shufflenet_v2();
    let cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 16);
    let capacity = cfg.estimated_capacity_fps(&model);
    let t_kill = SimTime::from_ps((4.0 / capacity * 1e12 / 2.0) as u64);
    let plan = FaultPlan::new().kill(t_kill, 0).kill(t_kill, 1);

    let mut fleet = Fleet::new(&cfg, &model).with_faults(&plan);
    let fin = drive_with_invariants(&mut fleet, &cfg);
    assert!(fin.shed.stranded > 0, "the collapse must strand requests");
    assert_eq!(fin.dropped, fin.shed.stranded);
    assert_eq!(fin.completed + fin.dropped, 16);

    let report = fleet.into_report();
    assert_eq!(report.offered, 16);
    assert_eq!(report.shed.stranded, fin.shed.stranded);
}

/// The full self-healing stack at once — stochastic failures, a warm
/// supervisor, a bounded retry policy and hedged dispatch — on a
/// functional fleet: conservation at every step, and the whole report
/// (predictions included) bit-identical across 1 / 2 / 8 workers.
#[test]
fn supervised_stochastic_chaos_is_deterministic_across_workers() {
    let (net, samples) = pin_workload();
    let engine = SconnaEngine::paper_default(5);
    let model = shufflenet_v2();
    let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 32);
    let capacity = base.estimated_capacity_fps(&model);
    let horizon = SimTime::from_ps((32.0 / capacity * 2.0 * 1e12) as u64);
    let cfg = base
        .with_supervisor(Supervisor::new(13))
        .with_retry(
            RetryPolicy::default()
                .with_max_attempts(3)
                .with_retry_budget(24)
                .with_hedge_after(SimTime::from_ns(30_000)),
        )
        .with_goodput_window(SimTime::from_ns(50_000));
    let plan = FailureProcess::new(41, SimTime::from_ps(horizon.as_ps() / 6))
        .with_stalls(0.3, SimTime::from_ns(40_000))
        .materialize(2, horizon);
    assert!(!plan.is_empty(), "the failure stream must produce chaos");

    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        let workload = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers,
        };
        let mut fleet = Fleet::new_functional(&cfg, &model, &workload).with_faults(&plan);
        let fin = drive_with_invariants(&mut fleet, &cfg);
        assert_eq!(fin.offered, 32);
        let r = fleet.into_functional_report();
        // Attempts account exactly the dispatch history: one per serve
        // or in-flight shed, plus one per recorded retry.
        assert_eq!(r.attempts.len(), 32);
        assert!(r
            .attempts
            .iter()
            .all(|&a| a <= r.serving.availability.max_attempts_seen));
        assert!(r.serving.availability.retries <= 24);
        reports.push(format!("{r:?}"));
    }
    assert_eq!(reports[0], reports[1], "worker count 2 changed the report");
    assert_eq!(reports[0], reports[2], "worker count 8 changed the report");
}

proptest! {
    /// Stochastic failures under supervision and a bounded retry policy:
    /// conservation holds at every step, the global retry budget and the
    /// per-request attempt ceiling are never exceeded, and the seeded
    /// run replays bit-identically.
    #[test]
    fn prop_supervised_chaos_conserves_and_respects_the_retry_budget(
        fseed in 0u64..=400,
        sseed in 0u64..=400,
        mtbf_frac in 2u64..=12,
        budget in 0u64..=8,
        max_attempts in 1u32..=4,
    ) {
        let model = shufflenet_v2();
        let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 2, 14);
        let capacity = base.estimated_capacity_fps(&model);
        let run_ps = (14.0 / capacity * 1e12) as u64;
        let mtbf = SimTime::from_ps((run_ps * mtbf_frac / 8).max(1));
        let cfg = base
            .with_supervisor(Supervisor::new(sseed))
            .with_retry(
                RetryPolicy::default()
                    .with_max_attempts(max_attempts)
                    .with_retry_budget(budget),
            );
        let plan = FailureProcess::new(fseed, mtbf)
            .materialize(2, SimTime::from_ps(run_ps * 2));
        let mut fleet = Fleet::new(&cfg, &model).with_faults(&plan);
        let fin = drive_with_invariants(&mut fleet, &cfg);
        prop_assert_eq!(fin.offered, 14);
        let report = fleet.into_report();
        let a = &report.availability;
        prop_assert!(a.retries <= budget, "budget {} exceeded: {}", budget, a.retries);
        prop_assert!(
            a.max_attempts_seen <= max_attempts,
            "attempt ceiling {} exceeded: {}", max_attempts, a.max_attempts_seen
        );
        // No self-repair in the process: every recovery is supervised.
        prop_assert!(a.recoveries <= a.restarts_issued, "spurious recovery");
        let replay = format!(
            "{:?}",
            Fleet::new(&cfg, &model).with_faults(&plan).into_report()
        );
        prop_assert_eq!(format!("{report:?}"), replay);
    }

    /// Crash-loop detection converges: a kill storm against one instance
    /// benches it after exactly `limit` live kills (restarts stop), and
    /// the survivor still serves the whole run.
    #[test]
    fn prop_crash_loop_detection_converges(
        seed in 0u64..=300,
        limit in 1u32..=3,
    ) {
        let model = shufflenet_v2();
        let sup = Supervisor {
            jitter: 0.0,
            crash_loop_limit: limit,
            crash_loop_window: SimTime::from_ns(100_000_000),
            ..Supervisor::new(seed)
        };
        let cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 2, 14)
            .with_supervisor(sup);
        // Kills every 30 µs: the zero-jitter warm restart takes 10 µs, so
        // every kill up to the benching one lands on a live instance.
        let mut plan = FaultPlan::new();
        for k in 0..8u64 {
            plan = plan.kill(SimTime::from_ns(20_000 + 30_000 * k), 0);
        }
        let mut fleet = Fleet::new(&cfg, &model).with_faults(&plan);
        let fin = drive_with_invariants(&mut fleet, &cfg);
        prop_assert_eq!(fin.completed + fin.dropped + fin.degraded, 14);
        let a = fleet.into_report().availability;
        prop_assert_eq!(a.benched, 1, "the flapping instance must be benched");
        prop_assert_eq!(a.restarts_issued, (limit - 1) as u64);
        prop_assert_eq!(a.active_instances, 1);
    }

    /// An empty fault plan is bit-identical to installing no plan at
    /// all, for every admission policy, queue bound, load and seed.
    #[test]
    fn prop_empty_fault_plan_is_bit_identical_to_none(
        policy_idx in 0usize..=3,
        cap in 0usize..=3, // 0 = unbounded
        load_x10 in 3u64..=30,
        seed in 0u64..=1000,
    ) {
        let model = shufflenet_v2();
        let slo = SimTime::from_ns(50_000 * (1 + seed % 8));
        let admission = [
            AdmissionPolicy::DropNewest,
            AdmissionPolicy::DropOldest,
            AdmissionPolicy::Deadline { slo },
            AdmissionPolicy::Degrade { fallback_bits: 4 },
        ][policy_idx];
        let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 3, 20);
        let capacity = base.estimated_capacity_fps(&model);
        let mut cfg = base
            .with_admission(admission)
            .with_poisson(capacity * load_x10 as f64 / 10.0)
            .with_seed(seed);
        if cap > 0 {
            cfg = cfg.with_queue_cap(cap);
        }
        let baseline = simulate_serving(&cfg, &model);
        let with_plan = Fleet::new(&cfg, &model)
            .with_faults(&FaultPlan::new())
            .into_report();
        prop_assert_eq!(format!("{baseline:?}"), format!("{with_plan:?}"));
    }

    /// Fault events sharing the same timestamps commute: any insertion
    /// order of a plan's events produces the same normalized schedule and
    /// a bit-identical report.
    #[test]
    fn prop_coincident_fault_permutations_produce_identical_reports(
        events in vec((0u8..3, 0usize..2, 0usize..2, 1u64..50), 2..6),
        seed in 0u64..=500,
    ) {
        let model = shufflenet_v2();
        let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 2, 16);
        let capacity = base.estimated_capacity_fps(&model);
        let cfg = base
            .with_poisson(1.5 * capacity)
            .with_queue_cap(2)
            .with_seed(seed);
        let window_ps = (16.0 / (1.5 * capacity) * 1e12) as u64;
        // Two shared instants force timestamp collisions between events.
        let instants = [SimTime::from_ps(window_ps / 4), SimTime::from_ps(window_ps / 2)];
        let build = |order: &[(u8, usize, usize, u64)]| {
            order.iter().fold(FaultPlan::new(), |plan, &(kind, inst, slot, dur)| {
                let at = instants[slot];
                match kind {
                    0 => plan.kill(at, inst),
                    1 => plan.restart(at, inst),
                    _ => plan.stall(at, inst, SimTime::from_ps(window_ps * dur / 100)),
                }
            })
        };
        let forward = build(&events);
        let reversed: Vec<_> = events.iter().rev().copied().collect();
        let backward = build(&reversed);
        let a = Fleet::new(&cfg, &model).with_faults(&forward).into_report();
        let b = Fleet::new(&cfg, &model).with_faults(&backward).into_report();
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// Arbitrary kill / restart / stall plans — closed-loop or Poisson —
    /// uphold every step invariant (conservation above all) and replay
    /// bit-identically.
    #[test]
    fn prop_arbitrary_fault_plans_conserve_and_replay_identically(
        events in vec((0u8..3, 0usize..3, 1u64..400, 1u64..80), 1..7),
        arrival_kind in 0u8..2,
        seed in 0u64..=500,
    ) {
        let model = shufflenet_v2();
        let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 3, 2, 18);
        let capacity = base.estimated_capacity_fps(&model);
        let window_ps = (18.0 / capacity * 1e12) as u64;
        let cfg = match arrival_kind {
            0 => base.with_seed(seed),
            _ => base
                .with_poisson(1.4 * capacity)
                .with_queue_cap(2)
                .with_seed(seed),
        };
        let mut plan = FaultPlan::new();
        for &(kind, inst, at_frac, dur_frac) in &events {
            let at = SimTime::from_ps(window_ps * at_frac / 400);
            let dur = SimTime::from_ps(window_ps * dur_frac / 400);
            plan = match kind {
                0 => plan.kill(at, inst),
                1 => plan.restart(at, inst),
                _ => plan.stall(at, inst, dur),
            };
        }
        let mut fleet = Fleet::new(&cfg, &model).with_faults(&plan);
        let fin = drive_with_invariants(&mut fleet, &cfg);
        prop_assert_eq!(fin.offered, 18);
        let first = format!("{:?}", fleet.into_report());
        let replay = format!(
            "{:?}",
            Fleet::new(&cfg, &model).with_faults(&plan).into_report()
        );
        prop_assert_eq!(first, replay);
    }

    /// Multi-tenant rosters uphold the per-tenant conservation invariant
    /// at every step under every scheduler, arbitrary weight mixes and
    /// request splits — and the final per-tenant report columns sum to
    /// the fleet totals.
    #[test]
    fn prop_multi_tenant_split_conserves_per_tenant(
        split in 1usize..=19,
        weight_a in 1u32..=8,
        sched_idx in 0usize..=2,
        clients_a in 1usize..=4,
        clients_b in 1usize..=4,
        cap in 0usize..=3, // 0 = unbounded
        seed in 0u64..=500,
    ) {
        let model = shufflenet_v2();
        let requests = 20usize;
        let scheduler = [
            TenantScheduler::WeightedFair,
            TenantScheduler::StrictPriority,
            TenantScheduler::SharedFifo,
        ][sched_idx];
        let mut cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 2, requests)
            .with_seed(seed)
            .with_tenants(vec![
                TenantSpec::new("a", 0, ArrivalProcess::ClosedLoop { clients: clients_a }, split)
                    .with_weight(weight_a as f64),
                TenantSpec::new(
                    "b",
                    0,
                    ArrivalProcess::ClosedLoop { clients: clients_b },
                    requests - split,
                ),
            ])
            .with_tenant_scheduler(scheduler);
        if cap > 0 {
            cfg = cfg.with_queue_cap(cap);
        }
        let mut fleet = Fleet::new_multi(&cfg, &[&model]);
        let fin = drive_with_invariants(&mut fleet, &cfg);
        prop_assert_eq!(fin.offered, requests as u64);
        prop_assert_eq!(fin.tenants.len(), 2);
        prop_assert_eq!(fin.tenants[0].offered, split as u64);
        let r = fleet.into_report();
        prop_assert_eq!(r.tenants.iter().map(|t| t.offered).sum::<u64>(), r.offered);
        prop_assert_eq!(r.tenants.iter().map(|t| t.completed).sum::<u64>(), r.completed);
        prop_assert_eq!(r.tenants.iter().map(|t| t.dropped).sum::<u64>(), r.dropped);
        prop_assert_eq!(r.tenants.iter().map(|t| t.degraded).sum::<u64>(), r.degraded);
        prop_assert_eq!(r.tenants.iter().map(|t| t.batches).sum::<u64>(), r.batches);
        prop_assert_eq!(
            r.tenants.iter().map(|t| t.latency.count).sum::<usize>(),
            r.latency.count
        );
        // Same model for both tenants: co-residency means no swaps ever.
        prop_assert_eq!(r.tenants.iter().map(|t| t.model_swaps).sum::<u64>(), 0);
    }
}

/// The multi-tenant headline scenario: two tenants on different models
/// under seeded chaos, per-tenant conservation at every step, and the
/// full per-tenant functional report — predictions, tenant accuracy and
/// usage rows included — bit-identical across 1 / 2 / 8 execution
/// workers.
#[test]
fn multi_tenant_chaos_is_deterministic_across_workers() {
    let (net, samples) = pin_workload();
    let engine = SconnaEngine::paper_default(5);
    let shuffle = shufflenet_v2();
    let goog = googlenet();
    let cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 36)
        .with_queue_cap(4)
        .with_seed(29)
        .with_tenants(vec![
            TenantSpec::new("shuffle", 0, ArrivalProcess::ClosedLoop { clients: 4 }, 24)
                .with_weight(2.0),
            TenantSpec::new("goog", 1, ArrivalProcess::ClosedLoop { clients: 2 }, 12),
        ]);
    let window_ps = 2_000_000_000u64;
    let plan = FaultPlan::new()
        .stall(
            SimTime::from_ps(window_ps / 8),
            1,
            SimTime::from_ps(window_ps / 8),
        )
        .kill(SimTime::from_ps(window_ps / 4), 0)
        .restart(SimTime::from_ps(window_ps / 2), 0);

    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        let wa = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers,
        };
        let wb = FunctionalWorkload { workers, ..wa };
        let mut fleet =
            Fleet::new_multi_functional(&cfg, &[&shuffle, &goog], &[&wa, &wb]).with_faults(&plan);
        let mut prev = fleet.snapshot();
        while fleet.step() {
            let snap = fleet.snapshot();
            check_step(&prev, &snap, &cfg);
            prev = snap;
        }
        let fin = fleet.snapshot();
        check_step(&prev, &fin, &cfg);
        assert_eq!(fin.offered, 36);
        let r = fleet.into_functional_report();
        assert_eq!(r.serving.tenants.len(), 2);
        assert_eq!(r.tenant_accuracy.len(), 2);
        reports.push(format!("{r:?}"));
    }
    assert_eq!(reports[0], reports[1], "worker count 2 changed the report");
    assert_eq!(reports[0], reports[2], "worker count 8 changed the report");
}

/// Trace order is storage, not semantics: permuting a multi-tenant
/// trace's time vectors (distinct timestamps) leaves the full per-tenant
/// report bit-identical — arrivals are replayed in time order no matter
/// how the vectors were written down.
#[test]
fn multi_tenant_shuffled_trace_is_bit_identical() {
    let model = shufflenet_v2();
    let step = 40_000_000u64; // 40 µs apart: no ties anywhere
    let times_a: Vec<SimTime> = (0..12u64)
        .map(|i| SimTime::from_ps(step * (2 * i + 1)))
        .collect();
    let times_b: Vec<SimTime> = (0..8u64)
        .map(|i| SimTime::from_ps(step * (3 * i + 2)))
        .collect();
    let mk = |ta: Vec<SimTime>, tb: Vec<SimTime>| {
        let cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 2, 20)
            .with_queue_cap(2)
            .with_tenants(vec![
                TenantSpec::new("a", 0, ArrivalProcess::Trace { times: ta }, 12).with_weight(3.0),
                TenantSpec::new("b", 0, ArrivalProcess::Trace { times: tb }, 8),
            ]);
        let mut fleet = Fleet::new_multi(&cfg, &[&model]);
        drive_with_invariants(&mut fleet, &cfg);
        format!("{:?}", fleet.into_report())
    };
    let baseline = mk(times_a.clone(), times_b.clone());
    let mut shuffled_a = times_a;
    let mut shuffled_b = times_b;
    shuffled_a.reverse();
    shuffled_b.rotate_left(3);
    shuffled_b.reverse();
    assert_eq!(mk(shuffled_a, shuffled_b), baseline);
}
