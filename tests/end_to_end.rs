//! Cross-crate integration tests: the same computation traced through
//! every abstraction level of the stack, from optical transients to
//! system-level inference.

use sconna::accel::{simulate_inference, AcceleratorConfig, SconnaEngine};
use sconna::photonics::oag::{transient, OpticalAndGate};
use sconna::sc::multiply::{lds_product, osm_product_stream};
use sconna::sc::sng::{LdsSng, StochasticNumberGenerator, ThermometerSng};
use sconna::sc::Precision;
use sconna::tensor::dataset::SyntheticDataset;
use sconna::tensor::engine::{ExactEngine, VdpEngine};
use sconna::tensor::models::all_models;
use sconna::tensor::smallcnn::{SmallCnn, SmallCnnConfig};

/// The same multiply agrees across three levels: closed form, packed
/// bit-streams, and the optical transient of the AND gate.
#[test]
fn multiply_agrees_from_closed_form_to_photons() {
    let p = Precision::B8;
    for (i, w) in [(180u32, 120u32), (17, 255), (255, 17), (64, 64)] {
        let closed = lds_product(i, w, p);
        let stream = osm_product_stream(i, w, p).count_ones() as u32;
        assert_eq!(closed, stream, "stream level, i={i} w={w}");

        let gate = OpticalAndGate::new(0.8e-9, 50e-9, 1e-3);
        let iv = LdsSng.generate(i, p);
        let wv = ThermometerSng.generate(w, p);
        let run = transient(&gate, &iv, &wv, 10e9, 2e-12, 8);
        let optical = run.decisions.iter().filter(|&&b| b).count() as u32;
        assert_eq!(closed, optical, "optical level, i={i} w={w}");
    }
}

/// A trained, quantized network classifies (almost) identically on the
/// exact engine and the noiseless stochastic engine, and the noisy engine
/// stays within a few points.
#[test]
fn quantized_network_runs_on_all_engines() {
    let data = SyntheticDataset::new(6, 12, 0.2, 5);
    let train = data.batch(20, 1);
    let test = data.batch(10, 2);
    let mut net = SmallCnn::new(
        SmallCnnConfig {
            input_size: 12,
            channels1: 6,
            channels2: 12,
            classes: 6,
        },
        5,
    );
    net.train(&train, 12, 0.05);
    let qnet = net.quantize(&train, 8);

    let exact = qnet.accuracy(&test, &ExactEngine);
    let noiseless = qnet.accuracy(&test, &SconnaEngine::noiseless());
    let noisy = qnet.accuracy(&test, &SconnaEngine::paper_default(3));

    assert!(exact > 0.8, "exact engine accuracy {exact}");
    assert!(
        (exact - noiseless).abs() <= 0.1,
        "noiseless SC accuracy {noiseless} vs exact {exact}"
    );
    assert!(
        exact - noisy <= 0.15,
        "noisy SC accuracy {noisy} vs exact {exact}"
    );
}

/// The Fig. 9 ordering holds on every model: SCONNA > MAM > AMM in FPS,
/// FPS/W and FPS/W/mm².
#[test]
fn fig9_ordering_holds_per_model() {
    for model in all_models() {
        let s = simulate_inference(&AcceleratorConfig::sconna(), &model);
        let m = simulate_inference(&AcceleratorConfig::mam(), &model);
        let a = simulate_inference(&AcceleratorConfig::amm(), &model);
        assert!(
            s.fps > m.fps && m.fps > a.fps,
            "{}: FPS ordering",
            model.name
        );
        assert!(
            s.fps_per_w > m.fps_per_w && m.fps_per_w > a.fps_per_w,
            "{}: FPS/W ordering",
            model.name
        );
        assert!(
            s.fps_per_w_per_mm2 > m.fps_per_w_per_mm2 && m.fps_per_w_per_mm2 > a.fps_per_w_per_mm2,
            "{}: FPS/W/mm2 ordering",
            model.name
        );
    }
}

/// The photonics scalability solve and the accelerator configuration
/// agree on the headline N = 176.
#[test]
fn scalability_and_accelerator_config_agree() {
    let solved = sconna::photonics::scalability::sconna_scalability_default().achievable_n;
    assert_eq!(solved, AcceleratorConfig::sconna().vdpe_size_n);
}

/// The stochastic engine's estimate converges to the exact product as
/// vectors grow (errors average out rather than accumulate).
#[test]
fn engine_relative_error_shrinks_with_vector_length() {
    let engine = SconnaEngine::noiseless();
    let rel_err = |len: usize| {
        let inputs: Vec<u32> = (0..len).map(|k| ((k * 97) % 256) as u32).collect();
        let weights: Vec<i32> = (0..len).map(|k| ((k * 31) % 255) as i32 - 127).collect();
        let exact = ExactEngine.vdp(&inputs, &weights);
        (engine.vdp(&inputs, &weights) - exact).abs() / exact.abs().max(1.0)
    };
    let short = rel_err(64);
    let long = rel_err(4608);
    assert!(
        long <= short + 0.05,
        "relative error must not grow with length: short {short}, long {long}"
    );
}
