//! Driving a SCONNA serving fleet past its saturation knee.
//!
//! Demonstrates the overload subsystem on top of the functional serving
//! fleet:
//!
//! 1. the closed-form capacity estimate names the knee of the open-loop
//!    sweep (below it goodput tracks the offered load, above it the
//!    bounded queue has to shed);
//! 2. `DropNewest` lets goodput plateau at capacity while p99 collapses
//!    onto the full-queue wait;
//! 3. `Deadline` keeps p99 bounded near the SLO by dropping stale
//!    requests instead of serving late answers;
//! 4. `Degrade` drops nobody: overflow runs on a 4-bit fallback model
//!    (`QuantizedNetwork::degraded`) bound to a 4-bit engine — goodput
//!    holds, accuracy pays;
//! 5. the whole sweep is bit-identical across worker counts.
//!
//! Run with: `cargo run --release --example overload`

use sconna::accel::report::format_overload_sweep;
use sconna::accel::serve::{overload_sweep, AdmissionPolicy, FunctionalWorkload, ServingConfig};
use sconna::accel::{AcceleratorConfig, SconnaEngine};
use sconna::photonics::pca::AdcModel;
use sconna::sc::Precision;
use sconna::sim::time::SimTime;
use sconna::tensor::dataset::SyntheticDataset;
use sconna::tensor::smallcnn::{SmallCnn, SmallCnnConfig};

const FALLBACK_BITS: u8 = 4;

fn main() {
    // The fleet: 2 SCONNA instances, batch 8, a 16-deep per-instance
    // queue, timed on the GoogleNet-class ShuffleNet V2 layer walk.
    let model = sconna::tensor::models::shufflenet_v2();
    let requests = 96;
    let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 8, requests)
        .with_queue_cap(16)
        .with_seed(5);
    let capacity = base.estimated_capacity_fps(&model);
    println!(
        "fleet: {} instances x batch {} on {} | capacity estimate {:.0} fps\n",
        base.instances, base.max_batch, model.name, capacity
    );

    // The functional workload: a trained small CNN, its 4-bit fallback,
    // and precision-matched engines for both.
    let seed = 7u64;
    let data = SyntheticDataset::new(10, 16, 0.25, seed);
    let train = data.batch(20, seed.wrapping_add(1));
    let test = data.batch(12, seed.wrapping_add(2));
    let mut cnn = SmallCnn::new(
        SmallCnnConfig {
            input_size: 16,
            channels1: 8,
            channels2: 16,
            classes: 10,
        },
        seed,
    );
    cnn.train(&train, 10, 0.05);
    let qnet = cnn.quantize(&train, 8);
    let fallback = qnet.degraded(FALLBACK_BITS);
    let engine = SconnaEngine::paper_default(seed);
    let fb_engine = SconnaEngine::new(
        Precision::new(FALLBACK_BITS),
        176,
        Some(AdcModel::sconna_default()),
        seed,
    );
    let workload = FunctionalWorkload {
        net: &qnet,
        fallback: Some(&fallback),
        fallback_engine: Some(&fb_engine),
        samples: &test,
        engine: &engine,
        workers: 2,
    };

    let rates = [0.5 * capacity, 1.5 * capacity, 3.0 * capacity];
    let slo = SimTime::from_secs_f64(2.0 * base.max_batch as f64 / capacity);

    // 1+2. DropNewest across the knee.
    let cfg_dn = base.clone();
    let dn = overload_sweep(&cfg_dn, &model, &workload, &rates, 2);
    println!("DropNewest (bounded queue, reject arrivals when full):");
    print!("{}", format_overload_sweep(&dn));
    assert_eq!(
        dn[0].report.serving.dropped, 0,
        "below the knee nothing sheds"
    );
    let plateau = dn[2].report.serving.goodput_fps / capacity;
    assert!(
        (0.7..=1.1).contains(&plateau),
        "goodput must plateau at capacity, got {plateau:.2}x"
    );
    assert!(
        dn[2].report.serving.latency.p99 > dn[0].report.serving.latency.p99,
        "p99 must collapse past the knee"
    );
    println!(
        "  -> knee at ~{:.0} fps: goodput {:.2}x capacity at 3x load, p99 {} (vs {})\n",
        capacity, plateau, dn[2].report.serving.latency.p99, dn[0].report.serving.latency.p99
    );

    // 3. Deadline keeps the tail bounded.
    let cfg_dl = base
        .clone()
        .with_admission(AdmissionPolicy::Deadline { slo });
    let dl = overload_sweep(&cfg_dl, &model, &workload, &rates, 2);
    println!("Deadline (shed anything whose queue wait blew slo = {slo}):");
    print!("{}", format_overload_sweep(&dl));
    let batch_service =
        SimTime::from_secs_f64(base.instances as f64 * base.max_batch as f64 / capacity);
    let bound = slo + batch_service + base.batch_window;
    assert!(
        dl[2].report.serving.latency.p99 <= bound,
        "deadline p99 {} must stay under {bound}",
        dl[2].report.serving.latency.p99
    );
    assert!(dl[2].report.serving.drop_rate > 0.0);
    println!(
        "  -> p99 {} <= {} at 3x load, paid with a {:.0}% drop rate\n",
        dl[2].report.serving.latency.p99,
        bound,
        100.0 * dl[2].report.serving.drop_rate
    );

    // 4. Degrade trades accuracy instead of availability.
    let cfg_dg = base.clone().with_admission(AdmissionPolicy::Degrade {
        fallback_bits: FALLBACK_BITS,
    });
    let dg = overload_sweep(&cfg_dg, &model, &workload, &rates, 2);
    println!("Degrade (overflow runs on the B{FALLBACK_BITS} fallback — nobody is dropped):");
    print!("{}", format_overload_sweep(&dg));
    assert_eq!(dg[2].report.serving.dropped, 0);
    assert!(dg[2].report.serving.degraded > 0);
    assert!(dg[2].report.serving.goodput_fps > dn[2].report.serving.goodput_fps);
    assert!(dg[2].report.accuracy_under_load < dg[0].report.accuracy_under_load);
    println!(
        "  -> goodput {:.0} fps (vs {:.0} under DropNewest), accuracy {:.1}% (vs {:.1}% below knee)\n",
        dg[2].report.serving.goodput_fps,
        dn[2].report.serving.goodput_fps,
        100.0 * dg[2].report.accuracy_under_load,
        100.0 * dg[0].report.accuracy_under_load
    );

    // 5. Determinism: the whole sweep, rerun serially, is bit-identical.
    let dg_serial = overload_sweep(&cfg_dg, &model, &workload, &rates, 1);
    assert_eq!(
        format!("{dg_serial:?}"),
        format!("{dg:?}"),
        "sweep must not depend on worker count"
    );
    println!("determinism: sweep bit-identical across 1 and 2 sweep workers");
}
