//! End-to-end CNN inference on the SCONNA execution engine.
//!
//! Trains the small CNN on the synthetic dataset, quantizes it to int8,
//! then classifies the same test set three ways: float32, exact int8, and
//! through SCONNA's stochastic pipeline with ADC noise — the Table V
//! experiment, interactively.
//!
//! Run with: `cargo run --release --example cnn_inference`

use sconna::accel::SconnaEngine;
use sconna::tensor::dataset::SyntheticDataset;
use sconna::tensor::engine::ExactEngine;
use sconna::tensor::smallcnn::{SmallCnn, SmallCnnConfig};

fn main() {
    let classes = 10;
    let data = SyntheticDataset::new(classes, 16, 0.25, 7);
    let train = data.batch(40, 8);
    let test = data.batch(40, 9);
    println!(
        "synthetic dataset: {} classes, {} train / {} test samples",
        classes,
        train.len(),
        test.len()
    );

    let mut net = SmallCnn::new(
        SmallCnnConfig {
            classes,
            ..SmallCnnConfig::default()
        },
        7,
    );
    println!("training (20 epochs of SGD)...");
    for epoch in [5usize, 10, 15, 20] {
        net.train(&train, 5, 0.05);
        println!(
            "  epoch {epoch:>2}: train accuracy {:.1}%",
            100.0 * net.accuracy(&train)
        );
    }
    println!("float32 test accuracy: {:.1}%", 100.0 * net.accuracy(&test));

    println!();
    println!("post-training quantization to int8...");
    let qnet = net.quantize(&train, 8);
    let exact_acc = qnet.accuracy(&test, &ExactEngine);
    println!("exact int8 test accuracy: {:.1}%", 100.0 * exact_acc);

    println!();
    println!("running the same network through SCONNA's stochastic pipeline");
    println!("(OSM multiplies, PCA accumulation, 1.45% sigma ADC noise)...");
    let engine = SconnaEngine::paper_default(42);
    let sc_acc = qnet.accuracy(&test, &engine);
    let sc_top5 = qnet.top_k_accuracy(&test, 5, &engine);
    println!(
        "SCONNA Top-1: {:.1}%  Top-5: {:.1}%",
        100.0 * sc_acc,
        100.0 * sc_top5
    );
    println!(
        "Top-1 drop vs exact int8: {:.2} percentage points (paper: <=1.5 for small CNNs)",
        100.0 * (exact_acc - sc_acc)
    );

    // Show a few individual classifications.
    println!();
    println!("sample predictions (label / exact / SCONNA):");
    for s in test.iter().step_by(57).take(6) {
        let exact_pred = qnet.predict(&s.image, &ExactEngine);
        let sc_pred = qnet.predict(&s.image, &engine);
        let mark = if sc_pred == s.label { "ok" } else { "MISS" };
        println!("  {} / {} / {}  {}", s.label, exact_pred, sc_pred, mark);
    }
}
