//! Two tenants sharing one SCONNA fleet: weighted-fair isolation and
//! the co-located model-swap cost.
//!
//! Demonstrates the multi-tenant serving layer:
//!
//! 1. per-tenant accounting: every `TenantUsage` row is exhaustive
//!    (`offered == completed + dropped + degraded`) and the rows sum to
//!    the fleet totals,
//! 2. **isolation**: an aggressor tenant offering far more than its
//!    fair share cannot inflate a well-behaved tenant's p99 under
//!    weighted-fair scheduling, while the shared-FIFO baseline lets it,
//! 3. **swap cost**: co-locating two models on one instance is nearly
//!    free on SCONNA (OSM LUT bank repointing) and reprogramming-bound
//!    on the analog MAM baseline.
//!
//! Run with: `cargo run --release --example multi_tenant`

use sconna::accel::serve::{ArrivalProcess, Fleet, ServingConfig, TenantScheduler, TenantSpec};
use sconna::accel::AcceleratorConfig;
use sconna::tensor::models::{googlenet, shufflenet_v2};

fn main() {
    let shuffle = shufflenet_v2();
    let google = googlenet();

    // --- 1+2. Isolation: a polite tenant vs an overloaded one -------
    //
    // Both tenants run ShuffleNet on 8 instances with equal weights, so
    // each is entitled to half the fleet. "polite" offers a quarter of
    // its share as Poisson traffic; "greedy" floods the fleet with 3x
    // its share. Only the scheduler changes between the two runs.
    let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 8, 1, 0)
        .with_unbounded_queue()
        .with_seed(42);
    let capacity = base.estimated_capacity_fps(&shuffle);
    let share = capacity / 2.0;
    let tenants = |polite_rate: f64| {
        vec![
            TenantSpec::new("polite", 0, ArrivalProcess::poisson(polite_rate), 256),
            TenantSpec::new("greedy", 0, ArrivalProcess::poisson(3.0 * share), 3072),
        ]
    };
    println!("isolation: 8 instances, equal weights, greedy tenant at 3x its share\n");
    let mut p99 = Vec::new();
    for scheduler in [TenantScheduler::WeightedFair, TenantScheduler::SharedFifo] {
        let cfg = base
            .clone()
            .with_tenant_scheduler(scheduler)
            .with_tenants(tenants(0.25 * share));
        let mut fleet = Fleet::new(&cfg, &shuffle);
        fleet.run_to_completion();
        let report = fleet.into_report();

        // Per-tenant rows are exhaustive and sum to the fleet totals.
        let mut total = 0;
        for t in &report.tenants {
            assert_eq!(t.offered, t.completed + t.dropped + t.degraded);
            total += t.offered;
        }
        assert_eq!(total, report.offered);

        println!("  {scheduler:?}:");
        for t in &report.tenants {
            println!(
                "    {:>6}: {:>5} served | p50 {:>12} | p99 {:>12}",
                t.name, t.completed, t.latency.p50, t.latency.p99
            );
        }
        p99.push(report.tenants[0].latency.p99);
    }
    let (wfq, fifo) = (p99[0], p99[1]);
    assert!(
        fifo.as_secs_f64() > 4.0 * wfq.as_secs_f64(),
        "shared FIFO must inflate the polite tenant's p99 (wfq {wfq}, fifo {fifo})"
    );
    println!(
        "\n  weighted-fair holds the polite tenant at {wfq}; shared FIFO lets the greedy\n  tenant push it to {fifo}\n"
    );

    // --- 3. Swap cost: two models alternating on one instance -------
    let co_located = |accel: AcceleratorConfig| {
        ServingConfig::saturation(accel, 1, 4, 0)
            .with_seed(42)
            .with_tenants(vec![
                TenantSpec::new("shuffle", 0, ArrivalProcess::closed_loop(4), 64),
                TenantSpec::new("google", 1, ArrivalProcess::closed_loop(4), 64),
            ])
    };
    println!("swap cost: ShuffleNet_V2 + GoogleNet alternating on one instance\n");
    let mut swap_time = Vec::new();
    for (name, accel) in [
        ("SCONNA", AcceleratorConfig::sconna()),
        ("MAM", AcceleratorConfig::mam()),
    ] {
        let mut fleet = Fleet::new_multi(&co_located(accel), &[&shuffle, &google]);
        fleet.run_to_completion();
        let report = fleet.into_report();
        let swaps: u64 = report.tenants.iter().map(|t| t.model_swaps).sum();
        let time: f64 = report
            .tenants
            .iter()
            .map(|t| t.swap_time.as_secs_f64())
            .sum();
        assert!(swaps > 0, "co-located models must swap");
        println!(
            "  {name:>6}: {swaps} swaps costing {:.3} us total (makespan {})",
            time * 1e6,
            report.makespan
        );
        swap_time.push(time);
    }
    assert!(
        swap_time[1] > 100.0 * swap_time[0],
        "MAM's cell-programming swaps must dwarf SCONNA's LUT repointing"
    );
    println!("\n  the paper's reprogramming asymmetry, measured as a multi-tenancy cost");
}
