//! Serving a stream of GoogleNet inference requests from a SCONNA fleet.
//!
//! Demonstrates the three fleet-level behaviors the serving simulator
//! models on top of the single-accelerator reproduction:
//!
//! 1. served FPS scales with instance count (≥ 1.8× from 1 → 2),
//! 2. batching lowers energy per inference vs batch-1 dispatch,
//! 3. reports are seed-deterministic regardless of sweep thread count.
//!
//! Run with: `cargo run --release --example serving_sim`

use sconna::accel::report::format_serving_sweep;
use sconna::accel::serve::{sweep, ServingConfig};
use sconna::accel::AcceleratorConfig;
use sconna::sim::parallel::default_workers;
use sconna::tensor::models::googlenet;

fn main() {
    let model = googlenet();
    let requests = 128;
    println!("serving {requests} GoogleNet requests, closed-loop saturation\n");

    // Sweep instance count × batch size.
    let configs: Vec<ServingConfig> = [1usize, 2, 4]
        .into_iter()
        .flat_map(|i| {
            [1usize, 8, 16].into_iter().map(move |b| {
                ServingConfig::saturation(AcceleratorConfig::sconna(), i, b, requests)
            })
        })
        .collect();
    let reports = sweep(configs.clone(), &model, default_workers());
    print!("{}", format_serving_sweep(&reports));

    // 1. Instance scaling at batch 16 (rows 2 and 5 of the sweep).
    let one = &reports[2];
    let two = &reports[5];
    let scaling = two.fps / one.fps;
    println!(
        "\n1 -> 2 instances at batch {}: {:.2}x served FPS  ({:.0} -> {:.0})",
        one.max_batch, scaling, one.fps, two.fps
    );
    assert!(scaling >= 1.8, "instance scaling {scaling} below 1.8x");

    // 2. Batching vs batch-1 energy at 2 instances (rows 3 and 5).
    let b1 = &reports[3];
    let b16 = &reports[5];
    println!(
        "batch 1 -> {} at {} instances: {:.3e} -> {:.3e} J/inference ({:.1}% lower)",
        b16.max_batch,
        b16.instances,
        b1.energy_per_inference_j,
        b16.energy_per_inference_j,
        100.0 * (1.0 - b16.energy_per_inference_j / b1.energy_per_inference_j)
    );
    assert!(
        b16.energy_per_inference_j < b1.energy_per_inference_j,
        "batching must lower energy per inference"
    );

    // 3. Latency percentiles of the largest fleet.
    let top = reports.last().unwrap();
    println!(
        "largest fleet latency: p50 {}  p95 {}  p99 {}  max {}",
        top.latency.p50, top.latency.p95, top.latency.p99, top.latency.max
    );

    // 4. Thread-count invariance: `reports` was computed on all cores;
    //    a single-worker rerun must be bit-identical.
    let serial = sweep(configs, &model, 1);
    assert_eq!(
        format!("{serial:?}"),
        format!("{reports:?}"),
        "sweep reports must not depend on worker count"
    );
    println!(
        "determinism: {} reports bit-identical across 1 and {} sweep workers",
        serial.len(),
        default_workers()
    );
}
