//! Serving a stream of GoogleNet inference requests from a SCONNA fleet.
//!
//! Demonstrates the fleet-level behaviors the serving simulator models
//! on top of the single-accelerator reproduction:
//!
//! 1. served FPS scales with instance count (≥ 1.8× from 1 → 2),
//! 2. batching lowers energy per inference vs batch-1 dispatch,
//! 3. reports are seed-deterministic regardless of sweep thread count,
//! 4. **functional serving**: instances execute their dequeued batches
//!    through real `vdp_batch` tiles on a weight-stationary prepared
//!    model, and the fleet reports top-1 accuracy-under-load —
//!    bit-identical across worker counts and arrival orderings.
//!
//! Run with: `cargo run --release --example serving_sim`

use sconna::accel::report::format_serving_sweep;
use sconna::accel::serve::{simulate_serving_functional, sweep, FunctionalWorkload, ServingConfig};
use sconna::accel::{AcceleratorConfig, SconnaEngine};
use sconna::sim::parallel::default_workers;
use sconna::tensor::dataset::SyntheticDataset;
use sconna::tensor::engine::ExactEngine;
use sconna::tensor::models::googlenet;
use sconna::tensor::smallcnn::{SmallCnn, SmallCnnConfig};

fn main() {
    let model = googlenet();
    let requests = 128;
    println!("serving {requests} GoogleNet requests, closed-loop saturation\n");

    // Sweep instance count × batch size.
    let configs: Vec<ServingConfig> = [1usize, 2, 4]
        .into_iter()
        .flat_map(|i| {
            [1usize, 8, 16].into_iter().map(move |b| {
                ServingConfig::saturation(AcceleratorConfig::sconna(), i, b, requests)
            })
        })
        .collect();
    let reports = sweep(configs.clone(), &model, default_workers());
    print!("{}", format_serving_sweep(&reports));

    // 1. Instance scaling at batch 16 (rows 2 and 5 of the sweep).
    let one = &reports[2];
    let two = &reports[5];
    let scaling = two.fps / one.fps;
    println!(
        "\n1 -> 2 instances at batch {}: {:.2}x served FPS  ({:.0} -> {:.0})",
        one.max_batch, scaling, one.fps, two.fps
    );
    assert!(scaling >= 1.8, "instance scaling {scaling} below 1.8x");

    // 2. Batching vs batch-1 energy at 2 instances (rows 3 and 5).
    let b1 = &reports[3];
    let b16 = &reports[5];
    println!(
        "batch 1 -> {} at {} instances: {:.3e} -> {:.3e} J/inference ({:.1}% lower)",
        b16.max_batch,
        b16.instances,
        b1.energy_per_inference_j,
        b16.energy_per_inference_j,
        100.0 * (1.0 - b16.energy_per_inference_j / b1.energy_per_inference_j)
    );
    assert!(
        b16.energy_per_inference_j < b1.energy_per_inference_j,
        "batching must lower energy per inference"
    );

    // 3. Latency percentiles of the largest fleet.
    let top = reports.last().unwrap();
    println!(
        "largest fleet latency: p50 {}  p95 {}  p99 {}  max {}",
        top.latency.p50, top.latency.p95, top.latency.p99, top.latency.max
    );

    // 4. Thread-count invariance: `reports` was computed on all cores;
    //    a single-worker rerun must be bit-identical.
    let serial = sweep(configs, &model, 1);
    assert_eq!(
        format!("{serial:?}"),
        format!("{reports:?}"),
        "sweep reports must not depend on worker count"
    );
    println!(
        "determinism: {} reports bit-identical across 1 and {} sweep workers",
        serial.len(),
        default_workers()
    );

    // 5. Functional serving: train a small CNN, quantize it, and let the
    //    fleet *execute* the requests it schedules — real stacked
    //    vdp_batch tiles on per-instance prepared (weight-stationary)
    //    model copies, predictions keyed per request id.
    println!("\n--- functional serving: accuracy under load ---");
    let seed = 7u64;
    let data = SyntheticDataset::new(10, 16, 0.25, seed);
    let train = data.batch(20, seed.wrapping_add(1));
    let test = data.batch(12, seed.wrapping_add(2));
    let mut cnn = SmallCnn::new(
        SmallCnnConfig {
            input_size: 16,
            channels1: 8,
            channels2: 16,
            classes: 10,
        },
        seed,
    );
    cnn.train(&train, 10, 0.05);
    let qnet = cnn.quantize(&train, 8);
    let engine = SconnaEngine::paper_default(seed);
    let (offline_top1, _) = qnet
        .prepare(&ExactEngine)
        .evaluate(&test, 5, default_workers());

    let fn_requests = 96;
    let fn_cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 8, fn_requests);
    let mut runs = Vec::new();
    for workers in [1usize, 2, 8] {
        let workload = FunctionalWorkload {
            net: &qnet,
            fallback: None,
            fallback_engine: None,
            samples: &test,
            engine: &engine,
            workers,
        };
        runs.push((
            workers,
            simulate_serving_functional(&fn_cfg, &model, &workload),
        ));
    }
    let (_, first) = &runs[0];
    println!("{fn_requests} requests on a 2-instance SCONNA fleet (stochastic engine, batch 8):");
    println!(
        "  top-1 accuracy under load: {:.1}%  ({} / {} correct; exact-engine offline top-1 {:.1}%)",
        100.0 * first.accuracy_under_load,
        first.correct,
        first.serving.completed,
        100.0 * offline_top1,
    );
    for (workers, run) in &runs {
        assert_eq!(
            run.predictions, first.predictions,
            "predictions must be bit-identical across worker counts"
        );
        println!(
            "  workers {workers}: accuracy {:.4} — predictions bit-identical",
            run.accuracy_under_load
        );
    }
    // Arrival ordering cannot move a prediction either: requests are
    // keyed by id, not by schedule.
    let poisson = simulate_serving_functional(
        &fn_cfg
            .clone()
            .with_poisson(first.serving.fps * 0.5)
            .with_seed(11),
        &model,
        &FunctionalWorkload {
            net: &qnet,
            fallback: None,
            fallback_engine: None,
            samples: &test,
            engine: &engine,
            workers: 2,
        },
    );
    assert_eq!(poisson.predictions, first.predictions);
    println!("  Poisson arrivals at 50% load: same {fn_requests} predictions, same accuracy");
}
