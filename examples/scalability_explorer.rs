//! Design-space exploration: how the achievable VDPC size responds to
//! the optical link parameters, and where the analog baselines' N-vs-B
//! trade-off comes from.
//!
//! Run with: `cargo run --release --example scalability_explorer`

use sconna::photonics::link::LinkParameters;
use sconna::photonics::photodetector::Photodetector;
use sconna::photonics::scalability::{max_analog_n, sconna_scalability, AnalogOrganization};
use sconna::sim::parallel::parallel_map;

fn main() {
    // --- SCONNA: sweep laser power and waveguide loss in parallel -------
    println!("SCONNA achievable N = M vs laser power and waveguide loss:");
    println!(
        "{:>14} | {:>10} {:>10} {:>10}",
        "", "0.1 dB/mm", "0.3 dB/mm", "0.5 dB/mm"
    );
    let grid: Vec<(f64, f64)> = [6.0f64, 8.0, 10.0, 12.0]
        .iter()
        .flat_map(|&p| [0.1f64, 0.3, 0.5].iter().map(move |&w| (p, w)))
        .collect();
    let results = parallel_map(grid.clone(), |(laser_dbm, wg_loss)| {
        let params = LinkParameters {
            laser_power_dbm: laser_dbm,
            il_wg_db_per_mm: wg_loss,
            ..LinkParameters::default()
        };
        sconna_scalability(&params, &Photodetector::default(), 30e9, 8, 50e-9, 0.25e-9).achievable_n
    });
    for (row, chunk) in results.chunks(3).enumerate() {
        let laser = [6.0, 8.0, 10.0, 12.0][row];
        println!(
            "{laser:>10} dBm | {:>10} {:>10} {:>10}",
            chunk[0], chunk[1], chunk[2]
        );
    }
    println!("(paper operating point: 10 dBm laser, 0.3 dB/mm -> N = 176)");

    // --- SCONNA: N vs bitrate -------------------------------------------
    println!();
    println!("SCONNA achievable N vs OSM bitrate (B = 8):");
    for br in [10e9, 20e9, 30e9, 40e9] {
        let s = sconna_scalability(
            &LinkParameters::default(),
            &Photodetector::default(),
            br,
            8,
            50e-9,
            0.25e-9,
        );
        println!(
            "  BR = {:>2.0} Gb/s: sensitivity {:.1} dBm, N = {}",
            br / 1e9,
            s.p_pd_opt_dbm,
            s.achievable_n
        );
    }

    // --- analog: the N-vs-B collapse ------------------------------------
    println!();
    println!("analog VDPC size collapse with precision (DR = 5 GS/s):");
    println!("{:>6}{:>12}{:>12}", "B", "MAM N", "AMM N");
    for b in 2u8..=8 {
        println!(
            "{b:>6}{:>12}{:>12}",
            max_analog_n(AnalogOrganization::Mam, b, 5e9),
            max_analog_n(AnalogOrganization::Amm, b, 5e9)
        );
    }
    println!();
    println!("at B = 8 the analog organizations are down to N <= 1 while");
    println!("SCONNA holds N = 176 — the core argument of the paper.");
}
