//! A serving fleet that heals itself.
//!
//! Demonstrates the self-healing layer on top of the steppable fleet:
//!
//! 1. a seeded `FailureProcess` turns scripted fault plans into
//!    statistical chaos — per-instance exponential kill streams,
//!    counter-keyed so the draws are order/thread-independent;
//! 2. without supervision every instance eventually dies and the queue
//!    strands (`ShedStranded`: accounted drops, never silent losses);
//! 3. a `Supervisor` restarts the dead with exponential backoff +
//!    deterministic jitter while the retry layer re-admits kill-aborted
//!    requests — the same traffic now serves to completion;
//! 4. what a restart costs is the accelerator's to answer: SCONNA's
//!    warm reload replays zero DKV programming, so its measured MTTR is
//!    pure backoff; the analog MAM baseline pays thermal reprogramming
//!    on every recovery.
//!
//! Run with: `cargo run --release --example self_healing`

use sconna::accel::perf::model_warm_reload_time;
use sconna::accel::serve::{simulate_serving, FailureProcess, Fleet, ServingConfig, Supervisor};
use sconna::accel::AcceleratorConfig;
use sconna::sim::time::SimTime;
use sconna::tensor::models::googlenet;

fn main() {
    let model = googlenet();
    println!("== Self-healing serving fleet ({}) ==\n", model.name);

    for accel in [AcceleratorConfig::sconna(), AcceleratorConfig::mam()] {
        let base = ServingConfig::saturation(accel, 2, 2, 96).with_seed(5);

        // Fault-free baseline: the goodput the chaos runs are measured
        // against, and the timescale the failure process is pinned to.
        let fault_free = simulate_serving(&base, &model);
        let t = fault_free.makespan;

        // Kill each instance every quarter-makespan on average; faults
        // keep arriving over 4x the run so a healing fleet stays under
        // fire. No self-repair in the process — recovery is the
        // supervisor's job.
        let process = FailureProcess::new(2023, SimTime::from_ps(t.as_ps() / 4));
        let plan = process.materialize(base.instances, SimTime::from_ps(t.as_ps() * 4));

        let unsupervised = Fleet::new(&base, &model).with_faults(&plan).into_report();

        // Production-shaped supervisor with its windows scaled to this
        // run: ladder reset and crash-loop window at a fiftieth of the
        // makespan (the defaults assume millisecond-scale services).
        let supervisor = Supervisor {
            reset_after: SimTime::from_ps((t.as_ps() / 50).max(1)),
            crash_loop_window: SimTime::from_ps((t.as_ps() / 50).max(1)),
            ..Supervisor::new(31)
        };
        let supervised_cfg = base.clone().with_supervisor(supervisor);
        let supervised = Fleet::new(&supervised_cfg, &model)
            .with_faults(&plan)
            .into_report();

        let served = |r: &sconna::accel::serve::ServingReport| {
            100.0 * (r.completed + r.degraded) as f64 / r.offered as f64
        };
        println!(
            "{} (warm reload {}):",
            accel.name,
            model_warm_reload_time(&accel, &model)
        );
        println!(
            "  fault-free:   {:>5.1}% served, goodput {:.0} fps",
            served(&fault_free),
            fault_free.goodput_fps
        );
        println!(
            "  unsupervised: {:>5.1}% served ({} stranded, {} instances left)",
            served(&unsupervised),
            unsupervised.shed.stranded,
            unsupervised.availability.active_instances
        );
        let a = &supervised.availability;
        println!(
            "  supervised:   {:>5.1}% served at {:.2}x fault-free goodput — {} incidents, {} recoveries, {} retries, mean MTTR {}\n",
            served(&supervised),
            supervised.goodput_fps / fault_free.goodput_fps,
            a.incidents,
            a.recoveries,
            a.retries,
            a.mean_mttr
        );
    }

    println!("The MTTR gap is the paper's no-reprogramming claim as availability:");
    println!("SCONNA restarts are backoff-bound, analog restarts are reprogram-bound.");
}
