//! Quickstart: the SCONNA pipeline in one page.
//!
//! 1. multiply two integers the way an Optical Stochastic Multiplier does;
//! 2. run a signed vector dot product through the OSM + PCA pipeline;
//! 3. size a SCONNA VDPC from the optical power budget;
//! 4. simulate one CNN inference and compare with an analog baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use sconna::accel::{simulate_inference, AcceleratorConfig, SconnaEngine};
use sconna::photonics::scalability::sconna_scalability_default;
use sconna::sc::accumulate::stochastic_vdp;
use sconna::sc::multiply::{ideal_product, osm_product};
use sconna::sc::Precision;
use sconna::tensor::engine::VdpEngine;
use sconna::tensor::models::googlenet;

fn main() {
    // --- 1. one stochastic multiply -------------------------------------
    let p = Precision::B8;
    let (i, w) = (200u32, 100u32);
    println!("OSM multiply: {i}/256 x {w}/256");
    println!("  stochastic product: {} ones", osm_product(i, w, p));
    println!("  ideal (rounded)   : {} ones", ideal_product(i, w, p));

    // --- 2. one VDPE dot product ----------------------------------------
    let inputs: Vec<u32> = (0..176).map(|k| (k * 3) % 256).collect();
    let weights: Vec<i32> = (0..176).map(|k| (k * 7) % 255 - 127).collect();
    let sc_result = stochastic_vdp(&inputs, &weights, p);
    let exact: i64 = inputs
        .iter()
        .zip(&weights)
        .map(|(&i, &w)| i as i64 * w as i64)
        .sum();
    println!();
    println!("VDPE dot product (176 points):");
    println!("  stochastic: {sc_result} (ones-count units)");
    println!("  exact/256 : {:.1}", exact as f64 / 256.0);

    // --- 3. how big can a VDPC be? --------------------------------------
    let s = sconna_scalability_default();
    println!();
    println!("VDPC scalability at B=8, BR=30 Gb/s:");
    println!(
        "  P_PD-opt = {:.1} dBm, power-limited N = {}, channels = {}",
        s.p_pd_opt_dbm, s.power_limited_n, s.channel_limited_n
    );
    println!("  achievable N = M = {} (paper: 176)", s.achievable_n);

    // --- 4. system-level inference --------------------------------------
    let model = googlenet();
    let sconna = simulate_inference(&AcceleratorConfig::sconna(), &model);
    let mam = simulate_inference(&AcceleratorConfig::mam(), &model);
    println!();
    println!("GoogleNet inference (batch 1):");
    println!(
        "  SCONNA         : {:>10.1} FPS  {:>7.2} FPS/W  ({} in {})",
        sconna.fps, sconna.fps_per_w, model.name, sconna.makespan
    );
    println!(
        "  MAM (HOLYLIGHT): {:>10.1} FPS  {:>7.2} FPS/W",
        mam.fps, mam.fps_per_w
    );
    println!("  speedup: {:.1}x", sconna.fps / mam.fps);

    // --- bonus: the engine is a drop-in VdpEngine ------------------------
    let engine = SconnaEngine::paper_default(1);
    let est = engine.vdp(&inputs, &weights);
    println!();
    println!("SconnaEngine VDP estimate (with ADC noise): {est:.0} vs exact {exact}");
}
