//! Device-level walkthrough: one wavelength channel from laser to PCA.
//!
//! Builds the optical AND gate, drives it with two stochastic streams,
//! follows the power budget down the waveguide, and accumulates the
//! product stream on the photo-charge accumulator.
//!
//! Run with: `cargo run --release --example photonic_link`

use sconna::photonics::link::{received_power_dbm, sconna_channel_loss, LinkParameters};
use sconna::photonics::oag::{transient, OpticalAndGate};
use sconna::photonics::pca::{DualTir, PcaCircuit};
use sconna::photonics::spectrum::DwdmGrid;
use sconna::photonics::units::{dbm_to_watts, watts_to_dbm};
use sconna::sc::sng::{LdsSng, StochasticNumberGenerator, ThermometerSng};
use sconna::sc::Precision;

fn main() {
    let p = Precision::B8;
    let params = LinkParameters::default();

    // --- the DWDM comb ----------------------------------------------------
    let grid = DwdmGrid::within_fsr(50e-9, 0.25e-9);
    println!(
        "DWDM grid: {} channels, {:.2}-{:.2} nm",
        grid.channels,
        grid.wavelength_m(0) * 1e9,
        grid.wavelength_m(grid.channels - 1) * 1e9
    );

    // --- power budget at N = M = 176 --------------------------------------
    let loss = sconna_channel_loss(&params, 176, 176);
    let rx_dbm = received_power_dbm(&params, 176, 176);
    println!();
    println!(
        "link budget: {:.1} dBm laser - {:.2} dB losses = {:.2} dBm at the PD",
        params.laser_power_dbm,
        loss.total_db(),
        rx_dbm
    );

    // --- the OAG computing one stochastic multiply -------------------------
    let gate = OpticalAndGate::new(0.8e-9, 50e-9, dbm_to_watts(0.0));
    let (ib, wb) = (180u32, 120u32);
    let iv = LdsSng.generate(ib, p);
    let wv = ThermometerSng.generate(wb, p);
    let run = transient(&gate, &iv, &wv, 30e9, 2e-12, 8);
    let ones = run.decisions.iter().filter(|&&b| b).count();
    println!();
    println!(
        "OAG multiply {ib}/256 x {wb}/256 at 30 Gb/s: {} ones in the product \
         stream (ideal {:.1})",
        ones,
        ib as f64 * wb as f64 / 256.0
    );
    println!(
        "  static OMA: {:.2} dBm; supported bitrate at -28 dBm floor: {:.1} Gb/s",
        watts_to_dbm(gate.static_oma_w()),
        gate.supported_bitrate_hz(dbm_to_watts(-28.0))
            .unwrap_or(0.0)
            / 1e9
    );

    // --- the PCA integrating the product stream ---------------------------
    let circuit = PcaCircuit {
        one_level_power_w: dbm_to_watts(rx_dbm),
        ..PcaCircuit::default()
    };
    let mut tir = DualTir::new(circuit);
    tir.accumulate(ones as u64);
    println!();
    println!(
        "PCA: {} ones -> {:.3} mV at the amplifier output (charge/one = {:.1} aC)",
        ones,
        tir.voltage() * 1e3,
        circuit.charge_per_one_c() * 1e18
    );
    let result = tir.end_phase();
    println!(
        "  phase ended: binary result {result} ones; capacitors swapped \
         (active: {:?})",
        tir.active()
    );
}
